"""Runtime data-path throughput: 256 MB spilled through each medium.

Not a paper figure — this measures the *runtime's* fast data path on a
3-server :class:`LocalSpongeCluster`: whole-chunk spills through the
local mmap pool, a remote sponge server (pooled persistent connections
vs. the old connection-per-request behaviour), and the local disk with
``fsync`` (so "disk" measures disk, not page cache).  Shape checks
assert the Table-1 ordering (local memory ≥ remote memory ≥ disk) and
that pooled persistent connections beat connection-per-request.

Absolute numbers depend on the machine; on a single-CPU host both ends
of the loopback share one core, so ratios understate what a real
network (where connection setup costs an RTT plus slow-start, not just
CPU) would show.
"""

import time

import pytest

from repro.backends.file_backends import FileDiskStore
from repro.runtime import protocol
from repro.runtime.client import RemoteServerStore
from repro.runtime.connection_pool import ConnectionPool
from repro.runtime.executor import ThreadExecutor
from repro.runtime.local_cluster import LocalSpongeCluster
from repro.runtime.shm_pool import MmapSpongePool
from repro.runtime.client import LocalMmapStore
from repro.sponge.config import SpongeConfig
from repro.sponge.spongefile import SpongeFile
from repro.sponge.store import run_sync
from repro.util.units import MB

CHUNK = 1 * MB
ROUND_CHUNKS = 32  # per-round working set: 32 MB, inside one 64 MB pool
ROUNDS = 8  # 8 rounds x 32 MB = 256 MB through every medium


class _OneShotConnections:
    """The pre-change client behaviour: a fresh TCP connection per request."""

    def __init__(self):
        self.request_count = 0

    def request(self, address, header, payload=b"", timeout=None):
        self.request_count += 1
        return protocol.request(address, header, payload, timeout=timeout)


def _rpc_count(store) -> int:
    """Round trips the store's connection layer has issued (0 if local)."""
    return getattr(getattr(store, "connections", None), "request_count", 0)


def _store_lifecycle(store, owner, payload):
    """Push one round through a store; returns per-phase (seconds, RPCs)."""
    r0 = _rpc_count(store)
    t0 = time.perf_counter()
    handles = [store._write(owner, payload) for _ in range(ROUND_CHUNKS)]
    t1 = time.perf_counter()
    r1 = _rpc_count(store)
    for handle in handles:
        assert len(store._read(handle)) == CHUNK
    t2 = time.perf_counter()
    r2 = _rpc_count(store)
    for handle in handles:
        store._free(handle)
    t3 = time.perf_counter()
    r3 = _rpc_count(store)
    return (t1 - t0, t2 - t1, t3 - t2), (r1 - r0, r2 - r1, r3 - r2)


def _measure_store(store, owner, payload):
    """Best-round throughput: the first round pays first-touch page
    faults and connection warm-up, and a single-CPU host adds noise
    spikes, so the fastest round is the steady-state figure.  RPC
    counts are deterministic per round, so the last round's stand."""
    rounds = [_store_lifecycle(store, owner, payload) for _ in range(ROUNDS)]
    best = [min(phases) for phases in zip(*(times for times, _rpcs in rounds))]
    rpcs = rounds[-1][1]
    return {
        "write": ROUND_CHUNKS / best[0],
        "read": ROUND_CHUNKS / best[1],
        "free_us": best[2] / ROUND_CHUNKS * 1e6,
        "rpcs": rpcs,
    }


def _measure_spongefile(cluster, owner):
    """End-to-end pipelined remote spill: SpongeFile + ThreadExecutor."""
    config = SpongeConfig(chunk_size=CHUNK, async_write_depth=4,
                          prefetch_depth=4)
    executor = ThreadExecutor(max_workers=8)
    pool = ConnectionPool()
    chain = cluster.chain(0, config=config, attach_local_pool=False,
                          executor=executor, connection_pool=pool)
    payload = bytes(CHUNK)
    best_write = best_read = float("inf")
    rpcs = (0, 0, 0)
    try:
        for _ in range(ROUNDS):
            spill = SpongeFile(owner, chain, config=config)
            r0 = pool.request_count
            t0 = time.perf_counter()
            for _ in range(ROUND_CHUNKS):
                spill.write_all(payload)
            spill.close_sync()
            t1 = time.perf_counter()
            r1 = pool.request_count
            reader = spill.open_reader()
            received = 0
            while True:
                chunk = run_sync(reader.next_chunk())
                if chunk is None:
                    break
                received += len(chunk)
            t2 = time.perf_counter()
            r2 = pool.request_count
            spill.delete_sync()
            r3 = pool.request_count
            assert received == ROUND_CHUNKS * CHUNK
            best_write = min(best_write, t1 - t0)
            best_read = min(best_read, t2 - t1)
            rpcs = (r1 - r0, r2 - r1, r3 - r2)
    finally:
        executor.close()
        pool.close()
    return {"write": ROUND_CHUNKS / best_write,
            "read": ROUND_CHUNKS / best_read, "free_us": 0.0, "rpcs": rpcs}


@pytest.mark.benchmark(group="runtime-throughput")
def test_bench_runtime_data_path(benchmark, tmp_path):
    payload = b"\xab" * CHUNK
    with LocalSpongeCluster(
        num_nodes=3, pool_size=64 * MB, chunk_size=CHUNK,
        poll_interval=1.0, gc_interval=10.0,
    ) as cluster:
        owner = cluster.task_id(0, "bench")

        def run():
            results = {}
            local_pool = MmapSpongePool(cluster.server_configs[0].pool_dir)
            try:
                results["local-mmap"] = _measure_store(
                    LocalMmapStore(local_pool), owner, payload
                )
            finally:
                local_pool.close()
            with ConnectionPool() as pool:
                results["remote-pooled"] = _measure_store(
                    RemoteServerStore("sponge@node1",
                                      cluster.server_address(1), pool=pool),
                    owner, payload,
                )
            results["remote-oneshot"] = _measure_store(
                RemoteServerStore("sponge@node1", cluster.server_address(1),
                                  pool=_OneShotConnections()),
                owner, payload,
            )
            results["disk-fsync"] = _measure_store(
                FileDiskStore(tmp_path / "spill", fsync=True), owner, payload
            )
            results["spongefile-remote"] = _measure_spongefile(cluster, owner)
            return results

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        # Post-run metrics report: the client stays registry-free (the
        # timed path measures the disarmed hot path), but the server
        # processes count everything — scrape them before teardown.
        metrics = cluster.scrape()

    print()
    print(f"{'medium':20s} {'write MB/s':>12s} {'read MB/s':>12s} "
          f"{'free us':>9s} {'RPCs w/r/f':>12s}")
    for medium, row in results.items():
        w_rpc, r_rpc, f_rpc = row["rpcs"]
        print(f"{medium:20s} {row['write']:12.1f} {row['read']:12.1f} "
              f"{row['free_us']:9.1f} {f'{w_rpc}/{r_rpc}/{f_rpc}':>12s}")
    pooled, oneshot = results["remote-pooled"], results["remote-oneshot"]
    print(f"pooled/oneshot: write {pooled['write'] / oneshot['write']:.2f}x  "
          f"read {pooled['read'] / oneshot['read']:.2f}x")

    print("server-side metrics (scraped):")
    for name in ("server.alloc.count", "server.alloc.bytes",
                 "server.read.count", "server.read.bytes",
                 "server.free.count", "tracker.polls"):
        print(f"  {name:24s} {metrics.counters.get(name, 0)}")
    assert not metrics.empty
    assert metrics.negative_counters() == []
    # Every remote chunk the benchmark pushed is visible server-side.
    expected_remote = 2 * ROUNDS * ROUND_CHUNKS  # pooled + oneshot stores
    assert metrics.counters["server.alloc.count"] >= expected_remote

    # Table-1 ordering: local shared memory beats the network, the
    # network beats stable storage.
    assert results["local-mmap"]["write"] >= results["remote-pooled"]["write"]
    assert results["remote-pooled"]["write"] >= results["disk-fsync"]["write"]
    assert results["local-mmap"]["read"] >= results["remote-pooled"]["read"]
    # Persistent pooled connections must not lose to connect-per-request.
    assert pooled["write"] >= oneshot["write"]
    assert pooled["read"] >= oneshot["read"]
