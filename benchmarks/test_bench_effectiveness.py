"""Section 4.3: aggregate intermediate data vs cluster memory."""

from .conftest import run_experiment


def test_bench_effectiveness(benchmark):
    run_experiment(benchmark, "effectiveness")
