"""Table 2: straggler input/spilled/chunks + fragmentation (<1%)."""

from .conftest import run_experiment


def test_bench_table2_straggler_stats(benchmark):
    run_experiment(benchmark, "table2")
