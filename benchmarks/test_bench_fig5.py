"""Figure 5: the Figure 4 grid under background-grep disk contention."""

from .conftest import run_experiment


def test_bench_fig5_contention(benchmark):
    run_experiment(benchmark, "fig5")
