"""Benchmark harness glue.

Each ``test_bench_*`` file regenerates one table/figure of the paper
via the experiment registry, prints the rows next to the paper's
numbers, and asserts the experiment's shape checks — reproducing the
*qualitative* result (who wins, by roughly what factor, where the
crossovers sit), not the authors' absolute measurements.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from repro.experiments import EXPERIMENTS


def run_experiment(benchmark, exp_id: str, **kwargs):
    """Benchmark one experiment end-to-end and assert its checks."""
    result = benchmark.pedantic(
        lambda: EXPERIMENTS[exp_id](**kwargs), rounds=1, iterations=1
    )
    print()
    print(result.report())
    failed = result.failed_checks()
    assert not failed, "shape checks failed:\n" + "\n".join(
        str(check) for check in failed
    )
    return result
