"""Benchmark harness glue.

Each ``test_bench_*`` file regenerates one table/figure of the paper
via the experiment registry, prints the rows next to the paper's
numbers, and asserts the experiment's shape checks — reproducing the
*qualitative* result (who wins, by roughly what factor, where the
crossovers sit), not the authors' absolute measurements.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import os

from repro.experiments import EXPERIMENTS


def requires_cores(n: int, what: str) -> bool:
    """Gate a ``--check`` acceptance floor on host parallelism.

    The standalone ``bench_*.py`` scripts measure concurrency effects
    (shard scaling, parity encode overlap) that a time-sliced single
    core cannot express; their floors would measure the scheduler, not
    the code.  Returns ``True`` when the host has at least ``n`` CPUs;
    otherwise prints the uniform ``CHECK SKIPPED`` notice (CI greps for
    it) and returns ``False`` so the caller can pass the check run.
    """
    cpus = os.cpu_count() or 1
    if cpus >= n:
        return True
    print(f"CHECK SKIPPED: {cpus} CPU(s), need >= {n} — {what}")
    return False


def run_experiment(benchmark, exp_id: str, **kwargs):
    """Benchmark one experiment end-to-end and assert its checks."""
    result = benchmark.pedantic(
        lambda: EXPERIMENTS[exp_id](**kwargs), rounds=1, iterations=1
    )
    print()
    print(result.report())
    failed = result.failed_checks()
    assert not failed, "shape checks failed:\n" + "\n".join(
        str(check) for check in failed
    )
    return result
