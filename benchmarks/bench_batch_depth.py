"""Batched spill throughput vs batch depth: MB/s and RPCs per spill.

Spills one 64 MB SpongeFile (64 x 1 MB chunks, every chunk remote)
through a 3-server :class:`LocalSpongeCluster` at several client batch
depths, and reports for each depth the best-round write/read throughput
plus the number of round trips (RPCs) the spill cost — the quantity the
batching work actually optimises: depth 1 pays one ``alloc_write`` per
chunk (~64 RPCs per spill), depth 32 coalesces the same bytes into a
couple of ``write_batch`` calls plus a lease.

Each round also re-reads the spill through the pipelined read path
(thread executor, ``prefetch_depth=4``, ``read_parallelism=4``): deep
batches coalesce the read into a few fat ``read_batch`` RPCs that are
strictly serial without striping, which historically made depth 32
*lose* to depth 1 on reads.  The striped reader keeps several of them
in flight, and the ``pipelined_read`` column records what that buys.

Results merge into ``BENCH_runtime.json`` under the ``"batch_depth"``
key (the compression bench owns ``"compression"``) so CI can upload
one combined file; ``--check`` additionally enforces the acceptance floor
(>= 1.5x write throughput at depth 32 vs 1, <= 8 write RPCs per 64 MB
spill) and exits non-zero when it regresses.  On hosts with >= 2 CPUs
it also requires the pipelined depth-32 read to be at least as fast as
the pipelined depth-1 read — the read-side regression striping exists
to close; a single time-sliced core skips that floor with a notice.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_batch_depth.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.runtime.connection_pool import ConnectionPool
from repro.runtime.executor import ThreadExecutor
from repro.runtime.local_cluster import LocalSpongeCluster
from repro.sponge.config import SpongeConfig
from repro.sponge.spongefile import SpongeFile
from repro.sponge.store import run_sync
from repro.util.units import MB

CHUNK = 1 * MB
SPILL_CHUNKS = 64  # one spill = 64 MB, the ISSUE's reference size


class _DepthBench:
    """One batch depth's long-lived client state plus its round log."""

    def __init__(self, cluster: LocalSpongeCluster, depth: int,
                 read_executor: ThreadExecutor) -> None:
        # lease_ahead stays 0: leasing trades an up-front RPC for
        # skipping the server's allocation scan on later writes, which
        # pays off under multi-writer allocation contention (the chaos
        # harness covers it) but only adds round trips to a
        # single-writer spill like this one.  No executor either: the
        # synchronous path is the paper's "64 synchronous RPCs" framing
        # and isolates batching (fewer round trips) from pipelining
        # (overlapped round trips), which PR 3 measures separately —
        # and serial rounds are far less scheduler-noise-sensitive on a
        # shared host.
        self.config = SpongeConfig(
            chunk_size=CHUNK,
            batch_depth=depth,
        )
        # The pipelined re-read swaps this config (and the thread
        # executor) onto the closed file: same batch depth, but with
        # prefetch and fan-out on so deep batched reads can stripe.
        self.read_config = SpongeConfig(
            chunk_size=CHUNK,
            batch_depth=depth,
            prefetch_depth=4,
            read_parallelism=4,
        )
        self.read_executor = read_executor
        self.pool = ConnectionPool()
        self.chain = cluster.chain(
            0, config=self.config, attach_local_pool=False,
            connection_pool=self.pool,
        )
        self.owner = cluster.task_id(0, f"bench-depth{depth}")
        self.rows: list[dict] = []

    def one_round(self, payload: bytes) -> dict:
        spill = SpongeFile(self.owner, self.chain, config=self.config)
        rpc0 = self.pool.request_count
        t0 = time.perf_counter()
        for _ in range(SPILL_CHUNKS):
            spill.write_all(payload)
        spill.close_sync()
        t1 = time.perf_counter()
        write_rpcs = self.pool.request_count - rpc0
        reader = spill.open_reader()
        received = 0
        while True:
            chunk = run_sync(reader.next_chunk())
            if chunk is None:
                break
            received += len(chunk)
        t2 = time.perf_counter()
        read_rpcs = self.pool.request_count - rpc0 - write_rpcs
        # Pipelined re-read: same bytes, prefetching/striped reader.
        spill.config, spill.executor = self.read_config, self.read_executor
        reader = spill.open_reader()
        pipelined = 0
        while True:
            chunk = run_sync(reader.next_chunk())
            if chunk is None:
                break
            pipelined += len(chunk)
        t3 = time.perf_counter()
        spill.delete_sync()
        assert received == SPILL_CHUNKS * CHUNK, "spill truncated"
        assert pipelined == received, "pipelined re-read truncated"
        return {
            "write_mb_s": SPILL_CHUNKS / (t1 - t0),
            "read_mb_s": SPILL_CHUNKS / (t2 - t1),
            "pipelined_read_mb_s": SPILL_CHUNKS / (t3 - t2),
            "write_rpcs": write_rpcs,
            "read_rpcs": read_rpcs,
        }

    def close(self) -> None:
        self.pool.close()

    def median(self) -> dict:
        # Median write round: on a shared/single-CPU host both tails
        # are noise (a stalled round *and* a lucky one), so the middle
        # round is the steady-state figure.  RPC counts are
        # deterministic per round.
        rows = sorted(self.rows, key=lambda r: r["write_mb_s"])
        return rows[len(rows) // 2]


def run(depths: list[int], rounds: int) -> dict:
    payload = bytes(CHUNK)
    # Slow background poll/GC: their periodic free_bytes RPCs otherwise
    # contend with the timed rounds on a single-CPU host.
    read_executor = ThreadExecutor(max_workers=4, name="bench-depth-read")
    with LocalSpongeCluster(
        num_nodes=3, pool_size=64 * MB, chunk_size=CHUNK,
        poll_interval=2.0, gc_interval=60.0,
    ) as cluster:
        benches = {d: _DepthBench(cluster, d, read_executor)
                   for d in depths}
        try:
            # Round-robin across depths so every depth samples the same
            # machine-noise regime — back-to-back per-depth blocks let a
            # load spike land entirely on one depth and skew the ratio.
            # Round 0 is an untimed warm-up (connection setup,
            # first-touch page faults).
            for round_no in range(rounds + 1):
                for bench in benches.values():
                    row = bench.one_round(payload)
                    if round_no > 0:
                        bench.rows.append(row)
        finally:
            for bench in benches.values():
                bench.close()
            read_executor.close(wait=False)
        results = {str(d): benches[d].median() for d in depths}
    report = {
        "benchmark": "runtime-batch-depth",
        "chunk_mb": CHUNK // MB,
        "spill_mb": SPILL_CHUNKS * CHUNK // MB,
        "rounds": rounds,
        "depths": results,
    }
    lo, hi = min(depths), max(depths)
    if lo != hi:
        # Paired per-round ratios: round r's deepest-depth spill runs
        # seconds after round r's depth-1 spill, so dividing within the
        # round cancels the slow machine-load drift that independent
        # per-depth medians are exposed to (runs minutes apart can
        # otherwise swing the ratio by +-10% on a shared host).
        ratios = sorted(
            deep["write_mb_s"] / shallow["write_mb_s"]
            for shallow, deep in zip(benches[lo].rows, benches[hi].rows)
        )
        report["write_speedup_max_vs_min_depth"] = round(
            ratios[len(ratios) // 2], 3
        )
        read_ratios = sorted(
            deep["pipelined_read_mb_s"] / shallow["pipelined_read_mb_s"]
            for shallow, deep in zip(benches[lo].rows, benches[hi].rows)
        )
        report["pipelined_read_speedup_max_vs_min_depth"] = round(
            read_ratios[len(read_ratios) // 2], 3
        )
    return report


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="spill throughput and RPC counts vs client batch depth"
    )
    parser.add_argument("--depths", type=int, nargs="+", default=[1, 8, 32])
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--out", default="BENCH_runtime.json")
    parser.add_argument("--check", action="store_true",
                        help="enforce the acceptance floor (1.5x write "
                             "speedup, <= 8 write RPCs per 64 MB spill)")
    args = parser.parse_args(argv)

    report = run(sorted(set(args.depths)), args.rounds)
    merged: dict = {}
    try:
        with open(args.out, encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        pass
    if "benchmark" in merged:
        merged = {"batch_depth": merged}  # pre-namespacing layout
    merged["batch_depth"] = report
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)

    print(f"{'depth':>6s} {'write MB/s':>12s} {'read MB/s':>12s} "
          f"{'piped MB/s':>11s} {'write RPCs':>11s} {'read RPCs':>10s}")
    for depth, row in report["depths"].items():
        print(f"{depth:>6s} {row['write_mb_s']:12.1f} {row['read_mb_s']:12.1f}"
              f" {row['pipelined_read_mb_s']:11.1f}"
              f" {row['write_rpcs']:11d} {row['read_rpcs']:10d}")
    speedup = report.get("write_speedup_max_vs_min_depth")
    read_speedup = report.get("pipelined_read_speedup_max_vs_min_depth")
    if speedup is not None:
        print(f"write speedup (deepest vs depth "
              f"{min(report['depths'], key=int)}): {speedup:.2f}x")
    if read_speedup is not None:
        print(f"pipelined read speedup (deepest vs depth "
              f"{min(report['depths'], key=int)}): {read_speedup:.2f}x")
    print(f"written to {args.out}")

    if args.check:
        from conftest import requires_cores

        failures = []
        deepest = report["depths"][max(report["depths"], key=int)]
        if speedup is not None and speedup < 1.5:
            failures.append(f"write speedup {speedup:.2f}x < 1.5x")
        if deepest["write_rpcs"] > 8:
            failures.append(
                f"{deepest['write_rpcs']} write RPCs per 64 MB spill > 8"
            )
        if (read_speedup is not None and read_speedup < 1.0
                and requires_cores(2, "striped batched reads need real "
                                      "parallelism to overlap RPCs")):
            failures.append(
                f"pipelined read speedup {read_speedup:.2f}x < 1.0x — "
                f"deep batches still lose on reads despite striping"
            )
        for failure in failures:
            print(f"ACCEPTANCE FAILURE: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
