"""Workload generators: samplers, crawl dataset, production trace."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import skewness
from repro.util.units import GB, KB, MB
from repro.workloads.tracegen import (
    TraceSpec,
    all_reduce_inputs,
    generate_trace,
    intermediate_data_fractions,
    per_job_mean_inputs,
    per_job_skewness,
)
from repro.workloads.webcrawl import CrawlSpec, crawl_summary, generate_crawl
from repro.workloads.zipf import bounded_pareto, lognormal_sizes, zipf_weights


class TestSamplers:
    def test_zipf_weights_normalized_and_decreasing(self):
        weights = zipf_weights(100, 1.2)
        assert weights.sum() == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    @given(st.integers(1, 500), st.floats(0.1, 3.0))
    def test_zipf_weights_property(self, n, alpha):
        weights = zipf_weights(n, alpha)
        assert weights.shape == (n,)
        assert weights.sum() == pytest.approx(1.0)

    def test_bounded_pareto_respects_bounds(self):
        rng = np.random.default_rng(0)
        samples = bounded_pareto(rng, low=1 * KB, high=1 * GB, alpha=0.5,
                                 size=10_000)
        assert samples.min() >= 1 * KB * 0.999
        assert samples.max() <= 1 * GB * 1.001

    def test_bounded_pareto_heavy_tail(self):
        rng = np.random.default_rng(0)
        samples = bounded_pareto(rng, low=1 * KB, high=1 * GB, alpha=0.5,
                                 size=50_000)
        assert samples.max() > 100 * np.median(samples)

    def test_bounded_pareto_invalid_bounds(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bounded_pareto(rng, low=10, high=5, alpha=1.0, size=1)

    def test_lognormal_median(self):
        rng = np.random.default_rng(0)
        samples = lognormal_sizes(rng, median=1 * MB, sigma=1.0, size=50_000)
        assert np.median(samples) == pytest.approx(1 * MB, rel=0.05)


class TestCrawlDataset:
    def test_logical_total_close_to_spec(self):
        spec = CrawlSpec(total_bytes=100 * MB, record_count=1000)
        records = list(generate_crawl(spec))
        assert len(records) == 1000
        total = sum(r.nbytes for r in records)
        assert total == pytest.approx(100 * MB, rel=0.05)

    def test_deterministic_for_seed(self):
        spec = CrawlSpec(total_bytes=10 * MB, record_count=100, seed=9)
        first = [r.value for r in generate_crawl(spec)]
        second = [r.value for r in generate_crawl(spec)]
        assert first == second

    def test_language_skew_english_dominant(self):
        spec = CrawlSpec(total_bytes=100 * MB, record_count=5000)
        summary = crawl_summary(list(generate_crawl(spec)))
        by_language = summary["by_language"]
        english = by_language["en"]
        assert english > 0.5 * sum(by_language.values())

    def test_domain_skew_one_giant(self):
        spec = CrawlSpec(total_bytes=100 * MB, record_count=5000)
        summary = crawl_summary(list(generate_crawl(spec)))
        sizes = sorted(summary["by_domain"].values(), reverse=True)
        assert sizes[0] > 5 * sizes[len(sizes) // 2]

    def test_spam_scores_in_unit_interval(self):
        spec = CrawlSpec(total_bytes=10 * MB, record_count=500)
        for record in generate_crawl(spec):
            assert 0.0 <= record.value.spam_score <= 1.0

    def test_record_size_snapped_to_pack_chunks(self):
        spec = CrawlSpec(total_bytes=10 * GB, record_count=100_000)
        per_chunk = (1 * MB) // spec.record_bytes
        waste = 1 * MB - per_chunk * spec.record_bytes
        assert waste / (1 * MB) < 0.01


class TestTrace:
    def test_deterministic(self):
        first = generate_trace(TraceSpec(num_jobs=50, seed=3))
        second = generate_trace(TraceSpec(num_jobs=50, seed=3))
        assert all(
            np.array_equal(a.reduce_inputs, b.reduce_inputs)
            for a, b in zip(first, second)
        )

    def test_population_mixture(self):
        jobs = generate_trace(TraceSpec(num_jobs=2000))
        kinds = [job.kind for job in jobs]
        assert 0.6 < kinds.count("adhoc") / len(kinds) < 0.8
        assert kinds.count("heavy") / len(kinds) < 0.10

    def test_figure1_statistics(self):
        jobs = generate_trace(TraceSpec())
        inputs = all_reduce_inputs(jobs)
        orders = math.log10(inputs.max() / np.median(inputs))
        assert orders > 5.0  # paper: ~8 orders; we reach ~6.5
        assert inputs.max() > 16 * GB
        skews = per_job_skewness(jobs)
        assert np.mean(np.abs(skews) > 1.0) > 0.5

    def test_per_job_means_shape(self):
        jobs = generate_trace(TraceSpec(num_jobs=100))
        assert per_job_mean_inputs(jobs).shape == (100,)

    def test_intermediate_fractions_bounded(self):
        spec = TraceSpec(num_jobs=1000)
        jobs = generate_trace(spec)
        fractions = intermediate_data_fractions(
            jobs, spec, cluster_memory_bytes=4000 * 16 * GB,
            concurrent_jobs=100,
        )
        assert fractions.min() >= 0
        assert fractions.max() < 0.25
