"""The three macro jobs produce correct answers and paper-shaped stats."""

import numpy as np
import pytest

from repro.backends.sim_backends import SimSpongeDeployment
from repro.mapreduce import Hadoop, SpillMode
from repro.sim import Environment, SimCluster
from repro.sim.cluster import paper_cluster_spec
from repro.util.units import GB, MB
from repro.workloads.jobs import (
    background_grep,
    frequent_anchortext_job,
    load_crawl_dataset,
    load_numbers_dataset,
    median_job,
    spam_quantiles_job,
)
from repro.workloads.webcrawl import CrawlSpec, generate_crawl

SCALE_BYTES = 1 * GB
SCALE_RECORDS = 10_000


@pytest.fixture
def hadoop():
    env = Environment()
    cluster = SimCluster(env, paper_cluster_spec(sponge_pool=1 * GB))
    deploy = SimSpongeDeployment(env, cluster)
    return Hadoop(env, cluster, sponge=deploy)


class TestMedianJob:
    def test_median_is_statistically_correct(self, hadoop):
        load_numbers_dataset(hadoop, total_bytes=SCALE_BYTES,
                             record_count=SCALE_RECORDS, seed=7)
        conf, driver = median_job(SpillMode.SPONGE)
        result = hadoop.run_job(conf, reduce_driver=driver)
        (record,) = result.output_records()
        # Uniform(0,1) numbers: the median must be ~0.5.
        assert record.value == pytest.approx(0.5, abs=0.03)

    def test_single_reducer_receives_everything(self, hadoop):
        hdfs_file = load_numbers_dataset(
            hadoop, total_bytes=SCALE_BYTES, record_count=SCALE_RECORDS
        )
        conf, driver = median_job(SpillMode.SPONGE)
        result = hadoop.run_job(conf, reduce_driver=driver)
        straggler = result.counters.straggler()
        assert straggler.input_bytes == hdfs_file.nbytes

    def test_spills_about_its_input(self, hadoop):
        load_numbers_dataset(hadoop, total_bytes=SCALE_BYTES,
                             record_count=SCALE_RECORDS)
        conf, driver = median_job(SpillMode.SPONGE)
        result = hadoop.run_job(conf, reduce_driver=driver)
        straggler = result.counters.straggler()
        assert straggler.spilled_bytes == pytest.approx(
            straggler.input_bytes, rel=0.05
        )


class TestAnchortextJob:
    def test_top_terms_match_exact_counts(self, hadoop):
        spec = CrawlSpec(total_bytes=SCALE_BYTES, record_count=SCALE_RECORDS)
        load_crawl_dataset(hadoop, spec)
        conf, driver = frequent_anchortext_job(SpillMode.SPONGE, k=3)
        result = hadoop.run_job(conf, reduce_driver=driver)
        outputs = {r.key: r.value for r in result.output_records()}

        from collections import Counter

        exact: dict = {}
        for record in generate_crawl(spec):
            page = record.value
            exact.setdefault(page.language, Counter()).update(
                page.anchor_terms
            )
        for language, ranked in outputs.items():
            expected_top = exact[language].most_common(1)[0][0]
            assert ranked[0][0] == expected_top

    def test_straggler_input_is_projected_quarter(self, hadoop):
        spec = CrawlSpec(total_bytes=SCALE_BYTES, record_count=SCALE_RECORDS)
        load_crawl_dataset(hadoop, spec)
        conf, driver = frequent_anchortext_job(SpillMode.SPONGE)
        result = hadoop.run_job(conf, reduce_driver=driver)
        straggler = result.counters.straggler()
        assert straggler.input_bytes == pytest.approx(
            0.25 * SCALE_BYTES, rel=0.1
        )


class TestSpamQuantilesJob:
    def test_quantiles_match_numpy(self, hadoop):
        spec = CrawlSpec(total_bytes=SCALE_BYTES, record_count=SCALE_RECORDS)
        load_crawl_dataset(hadoop, spec)
        conf, driver = spam_quantiles_job(SpillMode.SPONGE,
                                          probs=(0.0, 0.5, 1.0))
        result = hadoop.run_job(conf, reduce_driver=driver)
        outputs = {r.key: r.value for r in result.output_records()}

        scores: dict = {}
        for record in generate_crawl(spec):
            page = record.value
            scores.setdefault(page.domain, []).append(page.spam_score)
        biggest = max(scores, key=lambda d: len(scores[d]))
        low, mid, high = outputs[biggest]
        assert low == pytest.approx(min(scores[biggest]), abs=1e-9)
        assert high == pytest.approx(max(scores[biggest]), abs=1e-9)
        assert mid == pytest.approx(
            float(np.median(scores[biggest])), abs=0.01
        )

    def test_every_domain_reported(self, hadoop):
        spec = CrawlSpec(total_bytes=SCALE_BYTES, record_count=SCALE_RECORDS)
        load_crawl_dataset(hadoop, spec)
        conf, driver = spam_quantiles_job(SpillMode.SPONGE)
        result = hadoop.run_job(conf, reduce_driver=driver)
        domains = {r.value.domain for r in generate_crawl(spec)}
        assert len(result.output_records()) == len(domains)


class TestBackgroundGrep:
    def test_uncontended_task_near_sixteen_seconds(self, hadoop):
        conf = background_grep(hadoop, corpus_bytes=2 * GB)
        result = hadoop.run_job(conf)
        runtimes = [t.runtime for t in result.counters.maps]
        assert np.median(runtimes) == pytest.approx(16.0, rel=0.25)

    def test_corpus_created_once(self, hadoop):
        background_grep(hadoop, corpus_bytes=1 * GB)
        background_grep(hadoop, corpus_bytes=1 * GB)  # no duplicate error
        assert hadoop.hdfs.total_bytes("webcorpus") == 1 * GB
