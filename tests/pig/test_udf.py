"""Holistic UDFs: TopK (space-saving) and SpamQuantiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.types import Record
from repro.pig.udf import SpamQuantiles, TopK


def term_records(terms):
    return [Record("g", t, 8) for t in terms]


class TestTopK:
    def test_exact_when_under_capacity(self):
        udf = TopK(k=2, capacity=100)
        terms = ["a"] * 5 + ["b"] * 3 + ["c"] * 1
        top = udf.top_terms(term_records(terms))
        assert top == [("a", 5), ("b", 3)]

    def test_deterministic_tiebreak(self):
        udf = TopK(k=3, capacity=100)
        top = udf.top_terms(term_records(["z", "y", "x"]))
        assert top == [("x", 1), ("y", 1), ("z", 1)]

    def test_space_saving_keeps_heavy_hitters(self):
        """With Zipf data and a tight counter budget, the true heavy
        hitters must survive eviction (the space-saving guarantee)."""
        rng = np.random.default_rng(5)
        ranks = rng.zipf(1.5, size=20_000)
        terms = [f"t{r}" for r in ranks if r < 5000]
        udf = TopK(k=5, capacity=64)
        top_terms = [term for term, _ in udf.top_terms(term_records(terms))]
        # The three most common Zipf ranks are 1, 2, 3.
        assert {"t1", "t2", "t3"} <= set(top_terms)

    def test_counts_overestimate_at_most(self):
        """Space-saving never under-counts a surviving term."""
        terms = (["hot"] * 50) + [f"cold{i}" for i in range(200)]
        udf = TopK(k=1, capacity=16)
        (term, count), = udf.top_terms(term_records(terms))
        assert term == "hot"
        assert count >= 50  # over-estimate allowed, under-estimate not

    def test_multi_term_records(self):
        udf = TopK(k=1, capacity=100,
                   term_of=lambda record: record.value)
        records = [Record("g", ("a", "b", "a"), 8)]
        assert udf.top_terms(records) == [("a", 2)]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from("abcdef"), min_size=1, max_size=200))
    def test_matches_exact_counts_with_room(self, terms):
        udf = TopK(k=6, capacity=100)
        from collections import Counter

        expected = Counter(terms)
        got = dict(udf.top_terms(term_records(terms)))
        assert got == dict(expected)


class TestSpamQuantiles:
    def score_records(self, scores):
        return [Record(None, ("d", s), 8) for s in scores]

    def make_udf(self, probs=(0.0, 0.5, 1.0)):
        return SpamQuantiles(probs=probs,
                             score_of=lambda record: record.value[1])

    def test_quantiles_of_sorted_traversal(self):
        udf = self.make_udf()
        records = self.score_records([i / 10 for i in range(11)])
        assert udf.quantiles_of(records) == [0.0, 0.5, 1.0]

    def test_empty_group_gives_nan(self):
        udf = self.make_udf()
        result = udf.quantiles_of([])
        assert len(result) == 3
        assert all(q != q for q in result)  # NaNs

    def test_single_record(self):
        udf = self.make_udf()
        assert udf.quantiles_of(self.score_records([0.7])) == [0.7] * 3

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=50))
    def test_quantiles_monotone(self, scores):
        udf = self.make_udf(probs=(0.0, 0.25, 0.5, 0.75, 1.0))
        result = udf.quantiles_of(self.score_records(sorted(scores)))
        assert result == sorted(result)
        assert result[0] == min(scores)
        assert result[-1] == max(scores)
