"""Data bags and the spillable memory manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PigError
from repro.mapreduce.spill import DiskSpillTarget
from repro.mapreduce.types import Record
from repro.pig.databag import DataBag, SortedDataBag
from repro.pig.memory_manager import SpillableMemoryManager
from repro.sim.cluster import ClusterSpec, SimCluster
from repro.sim.kernel import Environment
from repro.util.units import KB, MB


@pytest.fixture
def ctx():
    env = Environment()
    cluster = SimCluster(env, ClusterSpec(racks=1, nodes_per_rack=1))
    node = next(iter(cluster))
    target = DiskSpillTarget(node, "t0")
    return env, target


def rec(key, nbytes=64 * KB):
    return Record(key, None, nbytes)


def run(env, gen):
    return env.run(env.process(gen))


def fill(env, bag, records):
    def op():
        yield from bag.add_all(records)

    run(env, op())


def read(env, bag):
    def op():
        got = yield from bag.read_all()
        return got

    return run(env, op())


class TestDataBag:
    def test_small_bag_stays_in_memory(self, ctx):
        env, target = ctx
        manager = SpillableMemoryManager(1 * MB)
        bag = DataBag(env, manager, target)
        fill(env, bag, [rec(i) for i in range(4)])
        assert bag.spilled_bytes == 0
        assert len(bag) == 4

    def test_overflow_triggers_spill(self, ctx):
        env, target = ctx
        manager = SpillableMemoryManager(512 * KB)
        bag = DataBag(env, manager, target, spill_chunk=128 * KB)
        fill(env, bag, [rec(i) for i in range(20)])  # 1.25 MB
        assert bag.spilled_bytes > 0
        assert manager.stats.bags_spilled >= 1
        assert bag.in_memory_bytes <= 512 * KB

    def test_read_all_returns_everything(self, ctx):
        env, target = ctx
        manager = SpillableMemoryManager(256 * KB)
        bag = DataBag(env, manager, target)
        records = [rec(i) for i in range(30)]
        fill(env, bag, records)
        got = read(env, bag)
        assert sorted(r.key for r in got) == list(range(30))

    def test_largest_bag_spilled_first(self, ctx):
        env, target = ctx
        manager = SpillableMemoryManager(1 * MB)
        small = DataBag(env, manager, target, name="small")
        big = DataBag(env, manager, target, name="big")
        fill(env, small, [rec(0)] * 2)
        fill(env, big, [rec(1)] * 16)  # pushes usage over 1 MB
        assert big.spilled_bytes > 0
        assert small.spilled_bytes == 0

    def test_deleted_bag_rejects_use(self, ctx):
        env, target = ctx
        manager = SpillableMemoryManager(1 * MB)
        bag = DataBag(env, manager, target)

        def delete():
            yield from bag.delete()

        run(env, delete())
        with pytest.raises(PigError):
            fill(env, bag, [rec(0)])

    def test_delete_releases_manager_accounting(self, ctx):
        env, target = ctx
        manager = SpillableMemoryManager(1 * MB)
        bag = DataBag(env, manager, target)
        fill(env, bag, [rec(0)] * 4)

        def delete():
            yield from bag.delete()

        run(env, delete())
        assert manager.usage_bytes == 0

    @settings(max_examples=20, deadline=None)
    @given(counts=st.lists(st.integers(1, 30), min_size=1, max_size=5),
           budget_kb=st.integers(128, 2048))
    def test_no_records_lost_property(self, counts, budget_kb):
        env = Environment()
        cluster = SimCluster(env, ClusterSpec(racks=1, nodes_per_rack=1))
        target = DiskSpillTarget(next(iter(cluster)), "prop")
        manager = SpillableMemoryManager(budget_kb * KB)
        bag = DataBag(env, manager, target)
        expected = 0
        for batch, count in enumerate(counts):
            fill(env, bag, [rec((batch, i)) for i in range(count)])
            expected += count
        got = read(env, bag)
        assert len(got) == expected == len(bag)


class TestSortedDataBag:
    def test_read_sorted_orders_across_spills(self, ctx):
        env, target = ctx
        manager = SpillableMemoryManager(256 * KB)
        bag = SortedDataBag(env, manager, target)
        import random

        keys = list(range(40))
        random.Random(3).shuffle(keys)
        fill(env, bag, [rec(k) for k in keys])
        assert bag.spilled_bytes > 0

        def op():
            got = yield from bag.read_sorted()
            return got

        got = run(env, op())
        assert [r.key for r in got] == sorted(keys)

    def test_custom_sort_key(self, ctx):
        env, target = ctx
        manager = SpillableMemoryManager(10 * MB)
        bag = SortedDataBag(env, manager, target,
                            sort_key=lambda r: -r.key)
        fill(env, bag, [rec(k) for k in (3, 1, 2)])

        def op():
            got = yield from bag.read_sorted()
            return got

        assert [r.key for r in run(env, op())] == [3, 2, 1]

    def test_bag_rereadable_after_sorted_pass(self, ctx):
        env, target = ctx
        manager = SpillableMemoryManager(256 * KB)
        bag = SortedDataBag(env, manager, target)
        fill(env, bag, [rec(k) for k in range(24)])

        def op():
            first = yield from bag.read_sorted()
            second = yield from bag.read_sorted()
            return first, second

        first, second = run(env, op())
        assert [r.key for r in first] == [r.key for r in second]


class TestMemoryManager:
    def test_invalid_budget_rejected(self):
        with pytest.raises(PigError):
            SpillableMemoryManager(0)

    def test_usage_tracks_registered_bags(self, ctx):
        env, target = ctx
        manager = SpillableMemoryManager(10 * MB)
        bags = [DataBag(env, manager, target) for _ in range(3)]
        for bag in bags:
            fill(env, bag, [rec(0, nbytes=100)])
        assert manager.usage_bytes == 300

    def test_spills_until_low_water(self, ctx):
        env, target = ctx
        manager = SpillableMemoryManager(1 * MB, low_water_fraction=0.5)
        bag = DataBag(env, manager, target)
        fill(env, bag, [rec(i) for i in range(20)])
        assert manager.usage_bytes <= 512 * KB
