"""The plan language and its compilation to MapReduce jobs."""

import pytest

from repro.backends.sim_backends import SimSpongeDeployment
from repro.errors import PigError
from repro.mapreduce import Hadoop, Record, SpillMode
from repro.pig import PigPlan, TopK, compile_plan
from repro.pig.udf import SpamQuantiles
from repro.sim.cluster import ClusterSpec, SimCluster
from repro.sim.kernel import Environment
from repro.sim.node import NodeSpec
from repro.util.units import GB, KB, MB


def make_hadoop(sponge=False):
    env = Environment()
    spec = ClusterSpec(
        racks=1, nodes_per_rack=4,
        node=NodeSpec(memory=16 * GB, sponge_pool=(1 * GB if sponge else 0)),
    )
    cluster = SimCluster(env, spec)
    deploy = SimSpongeDeployment(env, cluster) if sponge else None
    return Hadoop(env, cluster, sponge=deploy)


class TestPlanValidation:
    def test_builder_chain(self):
        plan = (
            PigPlan.load("f")
            .filter(lambda r: True)
            .foreach(lambda r: r)
            .group_by(lambda r: r.value)
            .apply(TopK())
        )
        plan.validate()

    def test_apply_requires_group(self):
        with pytest.raises(PigError):
            PigPlan.load("f").apply(TopK())

    def test_map_ops_after_group_rejected(self):
        plan = PigPlan.load("f").group_by(lambda r: r.value)
        with pytest.raises(PigError):
            plan.foreach(lambda r: r)

    def test_double_group_rejected(self):
        plan = PigPlan.load("f").group_by(lambda r: r.value)
        with pytest.raises(PigError):
            plan.group_by(lambda r: r.value)

    def test_incomplete_plan_fails_validation(self):
        with pytest.raises(PigError):
            PigPlan.load("f").validate()


class TestCompiledExecution:
    def crawl_records(self, rows, nbytes=256 * KB):
        return [Record(None, row, nbytes) for row in rows]

    def test_filter_and_group(self):
        hadoop = make_hadoop()
        rows = [("en", "x")] * 6 + [("fr", "y")] * 3 + [("xx", "z")] * 2
        hadoop.load_records("crawl", self.crawl_records(rows))
        plan = (
            PigPlan.load("crawl")
            .filter(lambda r: r.value[0] != "xx")
            .group_by(lambda r: r.value[0])
            .apply(TopK(k=1, term_of=lambda r: r.value[1]))
        )
        conf, driver = compile_plan(plan, name="q")
        result = hadoop.run_job(conf, reduce_driver=driver)
        out = {r.key: r.value for r in result.output_records()}
        assert set(out) == {"en", "fr"}
        assert out["en"] == (("x", 6),)

    def test_projection_shrinks_shuffle(self):
        hadoop = make_hadoop()
        rows = [("en", "t")] * 8
        hadoop.load_records("crawl", self.crawl_records(rows, nbytes=1 * MB))
        plan = (
            PigPlan.load("crawl")
            .foreach(lambda r: Record(r.key, r.value, r.nbytes // 4))
            .group_by(lambda r: r.value[0])
            .apply(TopK(k=1, term_of=lambda r: r.value[1]))
        )
        conf, driver = compile_plan(plan, name="projected")
        result = hadoop.run_job(conf, reduce_driver=driver)
        straggler = result.counters.straggler()
        assert straggler.input_bytes == 2 * MB  # 8 MB / 4

    @pytest.mark.parametrize("spill_mode",
                             [SpillMode.DISK, SpillMode.SPONGE])
    def test_big_group_spills_through_bags(self, spill_mode):
        hadoop = make_hadoop(sponge=(spill_mode is SpillMode.SPONGE))
        rows = [("en", i / 4000) for i in range(4000)]  # one 1 GB group
        hadoop.load_records("crawl", self.crawl_records(rows, nbytes=256 * KB))
        plan = (
            PigPlan.load("crawl")
            .group_by(lambda r: r.value[0])
            .apply(SpamQuantiles(probs=(0.0, 0.5, 1.0),
                                 score_of=lambda r: r.value[1]))
        )
        conf, driver = compile_plan(plan, name="quant",
                                    spill_mode=spill_mode)
        result = hadoop.run_job(conf, reduce_driver=driver)
        (record,) = result.output_records()
        low, mid, high = record.value
        assert low == 0.0
        assert mid == pytest.approx(0.5, abs=0.01)
        assert high == pytest.approx(0.99975, abs=0.01)
        straggler = result.counters.straggler()
        assert straggler.spilled_bytes > straggler.input_bytes  # bag + shuffle

    def test_group_count_preserved_under_spilling(self):
        hadoop = make_hadoop()
        rows = [(f"d{i % 7}", float(i)) for i in range(700)]
        hadoop.load_records("crawl", self.crawl_records(rows, nbytes=512 * KB))
        plan = (
            PigPlan.load("crawl")
            .group_by(lambda r: r.value[0])
            .apply(SpamQuantiles(probs=(0.5,),
                                 score_of=lambda r: r.value[1]))
        )
        conf, driver = compile_plan(plan, name="groups")
        result = hadoop.run_job(conf, reduce_driver=driver)
        assert len(result.output_records()) == 7
