"""Compiler internals: grouping and batching of sorted record streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.types import Record, sort_records
from repro.pig.compiler import _batches, _iter_groups


def rec(key, nbytes=10):
    return Record(key, None, nbytes)


class TestIterGroups:
    def test_groups_contiguous_keys(self):
        records = [rec("a"), rec("a"), rec("b"), rec("c"), rec("c")]
        groups = {k: len(v) for k, v in _iter_groups(records)}
        assert groups == {"a": 2, "b": 1, "c": 2}

    def test_empty_input(self):
        assert list(_iter_groups([])) == []

    def test_single_group(self):
        groups = list(_iter_groups([rec("x")] * 5))
        assert len(groups) == 1
        assert len(groups[0][1]) == 5

    @given(st.lists(st.sampled_from("abcd"), max_size=60))
    def test_partition_property(self, keys):
        records = sort_records([rec(k) for k in keys])
        groups = list(_iter_groups(records))
        # Every record appears in exactly one group; keys are unique.
        assert sum(len(g) for _k, g in groups) == len(records)
        group_keys = [k for k, _g in groups]
        assert len(set(group_keys)) == len(group_keys)
        for key, group in groups:
            assert all(r.key == key for r in group)


class TestBatches:
    def test_cuts_on_byte_budget(self):
        records = [rec("k", nbytes=30)] * 10  # 300 bytes
        batches = list(_batches(records, batch_bytes=100))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_no_records_lost(self):
        records = [rec(i, nbytes=7) for i in range(23)]
        batches = list(_batches(records, batch_bytes=50))
        flattened = [r for batch in batches for r in batch]
        assert flattened == records

    def test_empty(self):
        assert list(_batches([], 100)) == []

    @given(
        st.lists(st.integers(1, 40), max_size=40),
        st.integers(10, 200),
    )
    def test_batch_property(self, sizes, budget):
        records = [rec(i, nbytes=s) for i, s in enumerate(sizes)]
        batches = list(_batches(records, budget))
        assert [r for b in batches for r in b] == records
        # Every batch except possibly the last crossed the budget only
        # by its final record.
        for batch in batches[:-1]:
            assert sum(r.nbytes for r in batch) >= budget
