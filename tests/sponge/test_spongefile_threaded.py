"""The SpongeFile lifecycle suite, re-run on a real ThreadExecutor.

Substitutes :class:`~repro.runtime.executor.ThreadExecutor` for the
default :class:`SyncExecutor` (async writes and prefetches really run
on worker threads) and re-uses the existing lifecycle/chunking/spill
test classes unchanged — the executor must be behaviourally invisible.

Also covers the write/prefetch pipeline depths (``async_write_depth``,
``prefetch_depth``) beyond the paper's single outstanding operation.
"""

import pytest

from repro.errors import ChunkAllocationError
from repro.sponge import spongefile as spongefile_module
from repro.sponge.chunk import TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.spongefile import SpongeFile
from repro.runtime.executor import ThreadExecutor

from . import test_spongefile as base
from .conftest import CHUNK, MiniCluster


@pytest.fixture(scope="module")
def _thread_executor():
    executor = ThreadExecutor(max_workers=4, name="test-sponge-io")
    yield executor
    executor.close()


@pytest.fixture(autouse=True)
def _substitute_executor(monkeypatch, _thread_executor):
    # SpongeFile looks the default executor up at call time, so files
    # built without an explicit executor now pipeline for real.
    monkeypatch.setattr(
        spongefile_module, "SyncExecutor", lambda: _thread_executor
    )


class TestLifecycleThreaded(base.TestLifecycle):
    pass


class TestChunkingThreaded(base.TestChunking):
    # The hypothesis property creates its own clusters per example;
    # replace it with fixed cases (the property itself runs in the
    # sync suite).
    def test_roundtrip_property(self):
        for writes in ([b""], [b"a" * (3 * CHUNK), b"b"],
                       [b"x" * 700] * 5, [b"y" * (CHUNK - 1), b"z" * 2]):
            cluster = MiniCluster(
                ["h0", "h1"], pool_chunks=64,
                config=SpongeConfig(chunk_size=CHUNK),
            )
            owner = TaskId("h0", "thread-prop")
            sf = SpongeFile(owner, cluster.chain("h0"), cluster.config)
            for data in writes:
                sf.write_all(data)
            sf.close_sync()
            assert sf.read_all() == b"".join(writes)
            sf.delete_sync()


class TestSpillOrderThreaded(base.TestSpillOrder):
    pass


class TestStatsThreaded(base.TestStats):
    pass


class TestByteReaderThreaded(base.TestByteReader):
    pass


class TestPipelineDepth:
    """Deeper write/prefetch pipelines (depth > 1) stay correct.

    A single-worker executor keeps the in-process test stores free of
    concurrent access (they are not thread-safe) while still running
    the pipeline hand-off across real threads; concurrent deep
    pipelines run against the real runtime in the throughput benchmark.
    """

    def _deep_config(self):
        return SpongeConfig(chunk_size=CHUNK, async_write_depth=4,
                            prefetch_depth=4)

    def test_deep_pipeline_preserves_order_and_content(self):
        config = self._deep_config()
        cluster = MiniCluster(["h0"], pool_chunks=64, config=config)
        owner = TaskId("h0", "deep")
        payload = bytes(range(256)) * ((10 * CHUNK) // 256)
        with ThreadExecutor(max_workers=1) as executor:
            sf = SpongeFile(owner, cluster.chain("h0"), config,
                            executor=executor)
            sf.write_all(payload)
            sf.close_sync()
            assert [h.nbytes for h in sf.handles] == [CHUNK] * 10
            assert sf.read_all() == payload
            sf.delete_sync()
        assert cluster.pools["h0"].used_chunks == 0

    def test_deep_pipeline_error_delivered_at_close(self):
        config = self._deep_config()
        cluster = MiniCluster(["h0"], pool_chunks=1, config=config,
                              disk_capacity=CHUNK, with_dfs=False)
        with ThreadExecutor(max_workers=1) as executor:
            sf = SpongeFile(TaskId("h0", "doomed"), cluster.chain("h0"),
                            config, executor=executor)
            with pytest.raises(ChunkAllocationError):
                sf.write_all(b"x" * (8 * CHUNK))
                sf.close_sync()

    def test_depth_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SpongeConfig(chunk_size=CHUNK, async_write_depth=0)
        with pytest.raises(ConfigError):
            SpongeConfig(chunk_size=CHUNK, prefetch_depth=0)
