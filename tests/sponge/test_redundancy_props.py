"""Property tests for the SFR redundancy codec.

Four invariants, hypothesis-driven:

* **Round trip**: any group of byte strings (arbitrary sizes, any k)
  survives encode -> per-member decode, byte-exactly.
* **Any single erasure**: erase *any one* data member of a group and
  the remaining members plus parity reconstruct it byte-exactly —
  whichever member, whatever the body sizes (including empty and
  wildly unequal lengths, where the zero-padding semantics bite).
* **Bit flips**: flip any single bit of any member frame — header or
  body — and ``decode_member`` raises :class:`CorruptChunkError`;
  never silently wrong bytes entering an XOR.
* **k = n degenerate**: a codec with no parity members is a
  byte-identical passthrough (the ``redundancy="off"`` equivalence).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptChunkError
from repro.sponge.redundancy import (
    LEN_ENTRY,
    RFRAME_OVERHEAD,
    RedundancyCodec,
)

GROUPS = st.lists(st.binary(min_size=0, max_size=2048),
                  min_size=1, max_size=6)


def encode(bodies, gid=7):
    codec = RedundancyCodec(k=len(bodies))
    members = codec.encode_group(gid, bodies)
    assert [kind for kind, _ in members] == ["data"] * len(bodies) + ["parity"]
    return codec, [blob for _, blob in members]


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(bodies=GROUPS, gid=st.integers(min_value=0, max_value=2**32 - 1))
    def test_members_decode_to_their_inputs(self, bodies, gid):
        codec, members = encode(bodies, gid)
        k = len(bodies)
        for index, body in enumerate(bodies):
            assert bytes(codec.decode_member(members[index], gid, index)) == body
        parity = codec.decode_member(members[k], gid, k)
        assert len(parity) == LEN_ENTRY * k + max(map(len, bodies))

    @settings(max_examples=40, deadline=None)
    @given(bodies=GROUPS)
    def test_member_frames_fit_the_data_budget(self, bodies):
        codec = RedundancyCodec(k=len(bodies))
        chunk_size = max(bodies and max(map(len, bodies)) or 0, 1024) \
            + RFRAME_OVERHEAD + LEN_ENTRY * codec.k
        assert codec.data_budget(chunk_size) \
            == chunk_size - RFRAME_OVERHEAD - LEN_ENTRY * codec.k
        for _, blob in codec.encode_group(0, bodies):
            assert len(blob) <= chunk_size


class TestSingleErasure:
    @settings(max_examples=80, deadline=None)
    @given(bodies=GROUPS, data=st.data())
    def test_any_erased_member_reconstructs(self, bodies, data):
        gid = 3
        codec, members = encode(bodies, gid)
        k = len(bodies)
        missing = data.draw(st.integers(min_value=0, max_value=k - 1))
        siblings = {
            j: codec.decode_member(members[j], gid, j)
            for j in range(k) if j != missing
        }
        parity = codec.decode_member(members[k], gid, k)
        rebuilt = codec.reconstruct(k, siblings, parity, missing)
        assert rebuilt == bodies[missing]

    @settings(max_examples=40, deadline=None)
    @given(bodies=GROUPS)
    def test_erasing_parity_costs_nothing(self, bodies):
        # The (k+1)-th erasure case: parity lost, all data present.
        gid = 3
        codec, members = encode(bodies, gid)
        for index, body in enumerate(bodies):
            assert bytes(codec.decode_member(members[index], gid, index)) == body


class TestBitFlips:
    @settings(max_examples=120, deadline=None)
    @given(bodies=GROUPS, data=st.data())
    def test_any_flipped_bit_is_detected(self, bodies, data):
        gid = 5
        codec, members = encode(bodies, gid)
        k = len(bodies)
        which = data.draw(st.integers(min_value=0, max_value=k))
        frame = members[which].tobytes()
        offset = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        flipped = bytearray(frame)
        flipped[offset] ^= 1 << bit
        with pytest.raises(CorruptChunkError):
            codec.decode_member(bytes(flipped), gid, which)

    @settings(max_examples=40, deadline=None)
    @given(bodies=GROUPS, data=st.data())
    def test_truncation_is_detected(self, bodies, data):
        gid = 5
        codec, members = encode(bodies, gid)
        which = data.draw(st.integers(min_value=0, max_value=len(bodies)))
        frame = members[which].tobytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(CorruptChunkError):
            codec.decode_member(frame[:cut], gid, which)

    def test_misplaced_member_is_detected(self):
        codec, members = encode([b"aaa", b"bbb"], gid=1)
        frame = members[0].tobytes()
        with pytest.raises(CorruptChunkError):
            codec.decode_member(frame, gid=2, index=0)  # wrong group
        with pytest.raises(CorruptChunkError):
            codec.decode_member(frame, gid=1, index=1)  # wrong slot


class TestPassthrough:
    @settings(max_examples=40, deadline=None)
    @given(bodies=GROUPS)
    def test_k_equals_n_is_byte_identical(self, bodies):
        codec = RedundancyCodec(k=len(bodies), n=len(bodies))
        assert codec.passthrough
        members = codec.encode_group(0, bodies)
        assert [kind for kind, _ in members] == ["data"] * len(bodies)
        for (_, blob), body in zip(members, bodies):
            assert blob is body  # not equal: *identical*, zero transform
            assert codec.decode_member(blob, 0, 0) is body

    def test_passthrough_never_reconstructs(self):
        codec = RedundancyCodec(k=2, n=2)
        with pytest.raises(CorruptChunkError):
            codec.reconstruct(2, {0: b"x"}, b"", 1)


class TestReconstructValidation:
    def test_sibling_length_mismatch_is_detected(self):
        codec, members = encode([b"aaaa", b"bb"], gid=0)
        parity = codec.decode_member(members[2], 0, 2)
        with pytest.raises(CorruptChunkError):
            codec.reconstruct(2, {1: b"bbb"}, parity, 0)

    def test_missing_sibling_is_detected(self):
        codec, members = encode([b"aaaa", b"bb", b"c"], gid=0)
        parity = codec.decode_member(members[3], 0, 3)
        with pytest.raises(CorruptChunkError):
            codec.reconstruct(3, {1: b"bb"}, parity, 0)
