"""Shared fixtures: in-process sponge clusters built from memory backends."""

import pytest

from repro.backends.memory_backends import (
    LocalPoolStore,
    MemoryDfsStore,
    MemoryDiskStore,
    ServerStore,
)
from repro.sponge.allocator import AllocationChain
from repro.sponge.chunk import TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.gc import TaskRegistry, wire_peers
from repro.sponge.pool import SpongePool
from repro.sponge.quota import QuotaPolicy
from repro.sponge.server import SpongeServer
from repro.sponge.tracker import MemoryTracker

CHUNK = 1024  # small chunks keep tests fast


@pytest.fixture
def config():
    return SpongeConfig(chunk_size=CHUNK)


class MiniCluster:
    """A handful of in-process sponge nodes plus tracker and chains."""

    def __init__(self, hosts, pool_chunks, config, quota=None, local_pool=True,
                 disk_capacity=None, with_dfs=True):
        self.config = config
        self.registry = TaskRegistry()
        self.tracker = MemoryTracker()
        self.pools = {}
        self.servers = {}
        self.disks = {}
        self.chains = {}
        for host in hosts:
            pool = SpongePool(pool_chunks * config.chunk_size, config.chunk_size)
            server = SpongeServer(
                server_id=f"sponge@{host}",
                host=host,
                pool=pool,
                quota=QuotaPolicy(quota),
                local_liveness=self.registry.probe_for_host(host),
            )
            self.pools[host] = pool
            self.servers[host] = server
            self.tracker.register(server)
        wire_peers(list(self.servers.values()))
        self.tracker.poll_once()
        for host in hosts:
            disk = MemoryDiskStore(store_id=f"{host}/disk", capacity=disk_capacity)
            self.disks[host] = disk
            self.chains[host] = AllocationChain(
                local_store=(
                    LocalPoolStore(self.pools[host], store_id=f"{host}/pool")
                    if local_pool
                    else None
                ),
                tracker=self.tracker,
                remote_store_factory=lambda info: ServerStore(
                    self.servers[info.host or info.server_id.split("@", 1)[1]]
                ),
                disk_store=disk,
                dfs_store=MemoryDfsStore() if with_dfs else None,
                host=host,
                config=config,
            )

    def chain(self, host):
        return self.chains[host]


@pytest.fixture
def cluster(config):
    return MiniCluster(["h0", "h1", "h2"], pool_chunks=4, config=config)


@pytest.fixture
def owner():
    return TaskId("h0", "task-0")
