"""QuotaPolicy: stored-domain accounting, thread safety, tenant QoS.

The bug sweep this file regression-guards:

* charge/release byte-domain drift — both paths must live in the
  *stored* domain, so a compressed SpongeFile's delete returns usage
  to exactly zero;
* silent over-release absorption — underflow must clamp *and* count;
* the dead ``offenders()`` corrective path — charge raises before an
  owner can exceed the limit, so flagging only ``used >= limit`` missed
  everyone who *tried*;
* the missing lock — the policy is shared between handler threads and
  the GC thread.
"""

import threading

import pytest

from repro.errors import QuotaDeferError, QuotaExceededError
from repro.sponge.chunk import TaskId
from repro.sponge.quota import QuotaPolicy, tenant_of
from repro.sponge.spongefile import SpongeFile
from repro.sponge.config import SpongeConfig

from .conftest import CHUNK, MiniCluster


class TestTenantDerivation:
    def test_strips_pid_prefix_and_task_index(self):
        assert tenant_of(TaskId("n0", "pid:4711:chaos-w3")) == "chaos-w"
        assert tenant_of(TaskId("n1", "pid:4712:chaos-w0")) == "chaos-w"

    def test_plain_task_names(self):
        assert tenant_of(TaskId("h0", "reduce-17")) == "reduce"
        assert tenant_of(TaskId("h0", "sort_3")) == "sort"
        assert tenant_of(TaskId("h0", "job.0")) == "job"

    def test_string_owner_and_degenerate_names(self):
        assert tenant_of("reduce-17@h0") == "reduce"
        # An all-digit task must not collapse to the empty tenant.
        assert tenant_of(TaskId("h0", "123")) == "123"

    def test_same_job_different_hosts_share_a_tenant(self):
        a = tenant_of(TaskId("h0", "pid:1:etl-w1"))
        b = tenant_of(TaskId("h9", "pid:2:etl-w7"))
        assert a == b == "etl-w"


class TestChargeRelease:
    def test_round_trip_returns_to_zero(self):
        quota = QuotaPolicy(limit_per_node=10 * CHUNK)
        owner = TaskId("h0", "t")
        quota.charge(owner, 3 * CHUNK)
        quota.release(owner, 3 * CHUNK)
        assert quota.used_by(owner) == 0
        assert owner not in quota.usage
        assert quota.tenant_used(tenant_of(owner)) == 0

    def test_over_release_clamps_and_counts(self):
        quota = QuotaPolicy()
        owner = TaskId("h0", "t")
        quota.charge(owner, 100)
        quota.release(owner, 150)  # domain drift / double free
        assert quota.used_by(owner) == 0
        assert quota.release_underflow == 1
        # The tenant mirror must not go negative either.
        assert quota.tenant_used(tenant_of(owner)) == 0

    def test_release_of_unknown_owner_counts_underflow(self):
        quota = QuotaPolicy()
        quota.release(TaskId("h0", "ghost"), 10)
        assert quota.release_underflow == 1

    def test_drop_owner_releases_exactly_what_was_charged(self):
        quota = QuotaPolicy()
        owner = TaskId("h0", "t")
        quota.charge(owner, 7 * CHUNK)
        assert quota.drop_owner(owner) == 7 * CHUNK
        assert quota.used_by(owner) == 0
        assert quota.tenant_used(tenant_of(owner)) == 0
        assert quota.release_underflow == 0

    def test_zero_byte_charge_is_an_admission_probe(self):
        # Lease-time probes charge zero bytes: admission runs but no
        # spurious usage entry may appear.
        quota = QuotaPolicy()
        owner = TaskId("h0", "t")
        quota.charge(owner, 0)
        assert owner not in quota.usage
        assert quota.tenant_used(tenant_of(owner)) == 0

    def test_thread_safety_under_concurrent_charge_release(self):
        quota = QuotaPolicy()
        owners = [TaskId("h0", f"job-{i}") for i in range(4)]
        rounds = 300
        errors = []

        def worker(owner):
            try:
                for _ in range(rounds):
                    quota.charge(owner, 10)
                    quota.release(owner, 10)
                quota.charge(owner, 1)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(o,))
                   for o in owners]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert quota.release_underflow == 0
        for owner in owners:
            assert quota.used_by(owner) == 1
        # Per-tenant mirror agrees with per-owner truth.
        assert sum(quota.tenant_snapshot().values()) == len(owners)


class TestOffenders:
    def test_refused_owner_is_flagged(self):
        quota = QuotaPolicy(limit_per_node=CHUNK)
        owner = TaskId("h0", "greedy")
        quota.charge(owner, CHUNK // 2)  # under the limit, never *at* it
        with pytest.raises(QuotaExceededError):
            quota.charge(owner, CHUNK)  # would exceed -> refused
        # Pre-fix, offenders() only matched used >= limit, which a
        # refusal can never produce: the corrective path was dead code.
        assert owner in quota.offenders()

    def test_at_limit_owner_still_flagged(self):
        quota = QuotaPolicy(limit_per_node=CHUNK)
        owner = TaskId("h0", "full")
        quota.charge(owner, CHUNK)
        assert quota.offenders() == [owner]

    def test_gc_clears_the_refusal_flag(self):
        quota = QuotaPolicy(limit_per_node=CHUNK)
        owner = TaskId("h0", "greedy")
        with pytest.raises(QuotaExceededError):
            quota.charge(owner, 2 * CHUNK)
        assert owner in quota.offenders()
        quota.drop_owner(owner)
        assert quota.offenders() == []

    def test_no_limit_means_no_offenders(self):
        quota = QuotaPolicy()
        quota.charge(TaskId("h0", "t"), 10**9)
        assert quota.offenders() == []


class TestWeightedFairAdmission:
    CAPACITY = 8 * CHUNK

    def make(self, high_water=0.5):
        return QuotaPolicy(capacity=self.CAPACITY, high_water=high_water)

    def test_no_pressure_admits_freely(self):
        quota = self.make()
        owner = TaskId("h0", "a-1")
        quota.charge(owner, 3 * CHUNK)  # 3/8 < 0.5 high water
        assert quota.used_by(owner) == 3 * CHUNK

    def test_over_share_tenant_deferred_under_pressure(self):
        quota = self.make()
        a = TaskId("h0", "a-1")
        b = TaskId("h0", "b-1")
        quota.charge(a, 4 * CHUNK)
        quota.charge(b, CHUNK)
        # Pool past high water; a holds 4 * CHUNK = its fair share
        # (capacity * 1/2 with two equal-weight active tenants).
        with pytest.raises(QuotaDeferError):
            quota.charge(a, CHUNK)
        assert quota.deferrals == 1
        # The deferred charge left no usage behind.
        assert quota.used_by(a) == 4 * CHUNK

    def test_newcomer_is_never_deferred(self):
        quota = self.make()
        quota.charge(TaskId("h0", "a-1"), 6 * CHUNK)
        # A tenant holding nothing is admitted even past high water.
        quota.charge(TaskId("h0", "b-1"), CHUNK)

    def test_weights_shift_the_share(self):
        quota = self.make()
        a = TaskId("h0", "a-1")
        b = TaskId("h0", "b-1")
        quota.charge(b, CHUNK, weight=1.0)
        # Weight 3 of total 4: a's share is 6 * CHUNK, so 5 held + 1
        # incoming still admits where an equal-weight tenant defers.
        quota.charge(a, 5 * CHUNK, weight=3.0)
        quota.charge(a, CHUNK, weight=3.0)
        assert quota.used_by(a) == 6 * CHUNK
        with pytest.raises(QuotaDeferError):
            quota.charge(a, CHUNK, weight=3.0)

    def test_pool_used_overrides_charged_occupancy(self):
        quota = self.make()
        a = TaskId("h0", "a-1")
        quota.charge(a, 4 * CHUNK)
        # The pool itself reports low occupancy (e.g. chunks were
        # demoted): no pressure, no deferral.
        quota.charge(a, CHUNK, pool_used=0)

    def test_defer_is_retryable_subclass_of_quota_error(self):
        assert issubclass(QuotaDeferError, QuotaExceededError)

    def test_invalid_weight_and_high_water_rejected(self):
        with pytest.raises(ValueError):
            QuotaPolicy(capacity=8, high_water=0.0)
        quota = self.make()
        with pytest.raises(ValueError):
            quota.charge(TaskId("h0", "a-1"), 1, weight=0.0)


class TestStoredDomainRegression:
    def test_compressed_write_delete_returns_usage_to_exactly_zero(self):
        """The byte-domain drift regression (satellite 1).

        With ``compression="always"`` the pool stores compressed
        frames while the SpongeFile's handles are restamped to raw
        sizes for the caller.  Quota charge and release must both see
        the *stored* sizes: after delete, usage is exactly zero — not
        negative, not a residue of raw-minus-compressed.
        """
        chunk = 4096  # compression needs room for frame overhead
        config = SpongeConfig(chunk_size=chunk, compression="always",
                              compression_level=1)
        cluster = MiniCluster(
            ["h0", "h1"], pool_chunks=8, config=config,
            quota=8 * chunk, local_pool=False,  # everything via servers
        )
        owner = TaskId("h0", "compress-job-1")
        cluster.registry.start(owner)
        sf = SpongeFile(owner, cluster.chain("h0"), config)
        # Highly compressible payload: stored size << raw size.
        payload = b"spongefiles " * (3 * chunk // 12)
        sf.write_all(payload)
        sf.close_sync()
        assert sf.read_all() == payload
        quotas = [s.quota for s in cluster.servers.values()]
        assert sum(q.used_by(owner) for q in quotas) > 0
        sf.delete_sync()
        for quota in quotas:
            assert quota.used_by(owner) == 0
            assert owner not in quota.usage
            assert quota.release_underflow == 0

    def test_uncompressed_write_delete_also_exact(self):
        config = SpongeConfig(chunk_size=CHUNK)
        cluster = MiniCluster(
            ["h0", "h1"], pool_chunks=8, config=config,
            quota=8 * CHUNK, local_pool=False,
        )
        owner = TaskId("h0", "plain-job-1")
        cluster.registry.start(owner)
        sf = SpongeFile(owner, cluster.chain("h0"), config)
        sf.write_all(b"x" * (3 * CHUNK))
        sf.close_sync()
        sf.delete_sync()
        for server in cluster.servers.values():
            assert server.quota.used_by(owner) == 0
            assert server.quota.release_underflow == 0
