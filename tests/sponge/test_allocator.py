"""Allocation-chain behaviours: staleness, affinity, rack policy."""

import pytest

from repro.backends.memory_backends import MemoryDiskStore, ServerStore
from repro.errors import ChunkAllocationError
from repro.sponge.allocator import AllocationChain
from repro.sponge.chunk import ChunkLocation, TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.pool import SpongePool
from repro.sponge.server import SpongeServer
from repro.sponge.spongefile import SpongeFile
from repro.sponge.tracker import MemoryTracker

CHUNK = 1024
CONFIG = SpongeConfig(chunk_size=CHUNK)


def build(hosts, pool_chunks=4, racks=None, config=CONFIG):
    tracker = MemoryTracker()
    servers = {}
    for i, host in enumerate(hosts):
        rack = racks[i] if racks else "rack0"
        pool = SpongePool(pool_chunks * config.chunk_size, config.chunk_size)
        servers[host] = SpongeServer(
            f"sponge@{host}", host=host, pool=pool, rack=rack
        )
        tracker.register(servers[host])
    tracker.poll_once()

    def factory(info):
        return ServerStore(servers[info.host or info.server_id.split("@")[1]])

    return tracker, servers, factory


def make_chain(tracker, factory, host="h0", rack="rack0", config=CONFIG,
               local=None, disk=None):
    return AllocationChain(
        local_store=local,
        tracker=tracker,
        remote_store_factory=factory,
        disk_store=disk if disk is not None else MemoryDiskStore(),
        host=host,
        rack=rack,
        config=config,
    )


def spill(chain, owner, nbytes, config=CONFIG):
    sf = SpongeFile(owner, chain, config)
    sf.write_all(b"x" * nbytes)
    sf.close_sync()
    return sf


class TestStaleness:
    def test_stale_free_list_falls_through_to_next_server(self):
        tracker, servers, factory = build(["h0", "h1", "h2"], pool_chunks=2)
        chain = make_chain(tracker, factory)
        owner = TaskId("h0", "t")
        # After the poll, fill h1's pool behind the tracker's back, so
        # its snapshot entry is stale.
        other = TaskId("h1", "hog")
        pool1 = servers["h1"].pool
        while pool1.free_chunks:
            pool1.store(pool1.allocate(other), other, b"hog")

        sf = spill(chain, owner, 2 * CHUNK)
        # Both chunks landed on h2 (h1 was stale-full).
        assert all(h.location is ChunkLocation.REMOTE_MEMORY for h in sf.handles)
        assert all(h.store_id == "sponge@h2" for h in sf.handles)
        assert chain.stats.remote_stale_misses >= 1

    def test_all_remote_full_falls_to_disk(self):
        tracker, servers, factory = build(["h0", "h1"], pool_chunks=1)
        chain = make_chain(tracker, factory)
        owner = TaskId("h0", "t")
        sf = spill(chain, owner, 3 * CHUNK)
        locations = [h.location for h in sf.handles]
        assert locations.count(ChunkLocation.REMOTE_MEMORY) == 1
        assert ChunkLocation.LOCAL_DISK in locations


class TestAffinity:
    def test_chunks_stick_to_first_server_used(self):
        tracker, servers, factory = build(["h0", "h1", "h2", "h3"], pool_chunks=8)
        chain = make_chain(tracker, factory)
        owner = TaskId("h0", "t")
        sf = spill(chain, owner, 5 * CHUNK)
        used = {h.store_id for h in sf.handles}
        # Affinity keeps the whole file on ONE remote server.
        assert len(used) == 1

    def test_affinity_reduces_machines_at_risk(self):
        tracker, servers, factory = build(
            ["h0"] + [f"h{i}" for i in range(1, 6)], pool_chunks=3
        )
        chain = make_chain(tracker, factory)
        owner = TaskId("h0", "t")
        sf = spill(chain, owner, 6 * CHUNK)
        used = {h.store_id for h in sf.handles}
        # 6 chunks across 3-chunk pools: exactly 2 servers, not 6.
        assert len(used) == 2


class TestRackPolicy:
    def test_remote_spill_restricted_to_same_rack(self):
        tracker, servers, factory = build(
            ["h0", "h1", "h2"], pool_chunks=4, racks=["rack0", "rack0", "rack1"]
        )
        chain = make_chain(tracker, factory)
        owner = TaskId("h0", "t")
        sf = spill(chain, owner, 6 * CHUNK)
        remote = [h for h in sf.handles if h.location is ChunkLocation.REMOTE_MEMORY]
        assert remote and all(h.store_id == "sponge@h1" for h in remote)

    def test_rack_restriction_can_be_disabled(self):
        config = SpongeConfig(chunk_size=CHUNK, restrict_to_rack=False)
        tracker, servers, factory = build(
            ["h0", "h1"], pool_chunks=4, racks=["rack0", "rack1"], config=config
        )
        chain = make_chain(tracker, factory, config=config)
        owner = TaskId("h0", "t")
        sf = spill(chain, owner, 2 * CHUNK, config=config)
        assert {h.store_id for h in sf.handles} == {"sponge@h1"}


class TestMaxAttempts:
    def test_attempt_cap_probes_one_server_per_allocation(self):
        config = SpongeConfig(chunk_size=CHUNK, max_remote_attempts=1)
        tracker, servers, factory = build(["h0", "h1", "h2"], pool_chunks=1,
                                          config=config)
        chain = make_chain(tracker, factory, config=config)
        owner = TaskId("h0", "t")
        # Fill every remote pool AFTER the tracker poll, so all entries
        # are stale.  With a cap of 1, each allocation probes exactly
        # one stale server before falling back to disk.
        for host in ("h1", "h2"):
            pool = servers[host].pool
            hog = TaskId(host, "hog")
            while pool.free_chunks:
                pool.store(pool.allocate(hog), hog, b"hog")
        sf = spill(chain, owner, 2 * CHUNK, config=config)
        locations = [h.location for h in sf.handles]
        assert ChunkLocation.REMOTE_MEMORY not in locations
        assert chain.stats.remote_stale_misses == 2


class TestChainEdges:
    def test_empty_chain_rejected(self):
        with pytest.raises(ChunkAllocationError):
            AllocationChain(
                local_store=None,
                tracker=None,
                remote_store_factory=None,
                disk_store=None,
            )

    def test_tracker_down_mid_run_still_spills_to_disk(self):
        tracker, servers, factory = build(["h0", "h1"])
        # Simulate tracker losing every server.
        for server_id in list(tracker.server_ids):
            tracker.deregister(server_id)
        tracker.poll_once()
        chain = make_chain(tracker, factory)
        owner = TaskId("h0", "t")
        sf = spill(chain, owner, 2 * CHUNK)
        assert all(h.location is ChunkLocation.LOCAL_DISK for h in sf.handles)

    def test_store_for_unknown_handle_raises(self):
        tracker, servers, factory = build(["h0"])
        chain = make_chain(tracker, factory)
        from repro.sponge.chunk import ChunkHandle

        bogus = ChunkHandle(ChunkLocation.LOCAL_DISK, "elsewhere", 0, 1)
        with pytest.raises(ChunkAllocationError):
            chain.store_for(bogus)
