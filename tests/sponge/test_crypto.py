"""Chunk encryption (the §3.1.4 access-control extension)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SpongeError
from repro.sponge.chunk import TaskId
from repro.sponge.crypto import EncryptedStore, decrypt_chunk, encrypt_chunk
from repro.sponge.pool import SpongePool
from repro.backends.memory_backends import LocalPoolStore, MemoryDiskStore
from repro.sponge.allocator import AllocationChain
from repro.sponge.config import SpongeConfig
from repro.sponge.spongefile import SpongeFile

KEY = b"0123456789abcdef0123456789abcdef"
OWNER = TaskId("h0", "secret-task")


class TestCipher:
    def test_roundtrip(self):
        sealed = encrypt_chunk(KEY, b"top secret payload")
        assert decrypt_chunk(KEY, sealed) == b"top secret payload"

    def test_ciphertext_differs_from_plaintext(self):
        sealed = encrypt_chunk(KEY, b"A" * 256)
        assert b"A" * 64 not in sealed

    def test_nonce_randomizes(self):
        first = encrypt_chunk(KEY, b"same data")
        second = encrypt_chunk(KEY, b"same data")
        assert first != second

    def test_wrong_key_rejected(self):
        sealed = encrypt_chunk(KEY, b"data")
        with pytest.raises(SpongeError, match="authentication"):
            decrypt_chunk(b"x" * 32, sealed)

    def test_tampering_detected(self):
        sealed = bytearray(encrypt_chunk(KEY, b"data"))
        sealed[20] ^= 0xFF
        with pytest.raises(SpongeError, match="authentication"):
            decrypt_chunk(KEY, bytes(sealed))

    def test_truncated_blob_rejected(self):
        with pytest.raises(SpongeError, match="too short"):
            decrypt_chunk(KEY, b"short")

    @given(st.binary(max_size=5000))
    def test_roundtrip_property(self, data):
        assert decrypt_chunk(KEY, encrypt_chunk(KEY, data)) == data


class TestEncryptedStore:
    def make_store(self):
        pool = SpongePool(8 * 65536, 65536)
        return pool, EncryptedStore(LocalPoolStore(pool), KEY)

    def test_pool_holds_only_ciphertext(self):
        pool, store = self.make_store()
        from repro.sponge.store import run_sync

        handle = run_sync(store.write_chunk(OWNER, b"plaintext" * 100))
        raw = pool.fetch(handle.ref[1], OWNER)
        assert b"plaintext" not in raw
        assert run_sync(store.read_chunk(handle)) == b"plaintext" * 100

    def test_handle_reports_plaintext_size(self):
        pool, store = self.make_store()
        from repro.sponge.store import run_sync

        handle = run_sync(store.write_chunk(OWNER, b"x" * 100))
        assert handle.nbytes == 100

    def test_short_key_rejected(self):
        pool = SpongePool(8 * 65536, 65536)
        with pytest.raises(SpongeError):
            EncryptedStore(LocalPoolStore(pool), b"weak")

    def test_spongefile_over_encrypted_chain(self):
        config = SpongeConfig(chunk_size=4096)
        # Pool chunks leave headroom for the 48-byte nonce+MAC seal.
        pool = SpongePool(16 * 4160, 4160)
        chain = AllocationChain(
            local_store=EncryptedStore(LocalPoolStore(pool), KEY),
            tracker=None,
            remote_store_factory=None,
            disk_store=EncryptedStore(MemoryDiskStore(), KEY),
            config=config,
        )
        sf = SpongeFile(OWNER, chain, config)
        payload = bytes(range(256)) * 256  # 64 KB -> 16 chunks + disk
        sf.write_all(payload)
        sf.close_sync()
        assert sf.read_all() == payload
        # Nothing in the pool is plaintext.
        for index, owner in pool:
            if owner is not None:
                assert bytes(range(64)) not in pool.fetch(index, owner)
        sf.delete_sync()
