"""Transparent chunk compression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.backends.memory_backends import LocalPoolStore, MemoryDiskStore
from repro.errors import SpongeError
from repro.sponge.allocator import AllocationChain
from repro.sponge.chunk import TaskId
from repro.sponge.compression import FRAME_OVERHEAD, CompressedStore
from repro.sponge.config import SpongeConfig
from repro.sponge.crypto import EncryptedStore
from repro.sponge.pool import SpongePool
from repro.sponge.spongefile import SpongeFile
from repro.sponge.store import run_sync

OWNER = TaskId("h0", "squeeze")
KEY = b"0123456789abcdef0123456789abcdef"


def make_store():
    pool = SpongePool(8 * 65536, 65536)
    return pool, CompressedStore(LocalPoolStore(pool))


class TestCompressedStore:
    def test_roundtrip(self):
        _pool, store = make_store()
        data = b"spill data " * 500
        handle = run_sync(store.write_chunk(OWNER, data))
        assert run_sync(store.read_chunk(handle)) == data
        assert handle.nbytes == len(data)

    def test_compressible_data_shrinks_in_the_pool(self):
        pool, store = make_store()
        data = b"A" * 50_000
        handle = run_sync(store.write_chunk(OWNER, data))
        stored = pool.fetch(handle.ref[1], OWNER)
        assert len(stored) < len(data) // 10
        assert store.stats.ratio > 10

    def test_incompressible_data_stored_raw(self):
        import os

        _pool, store = make_store()
        data = os.urandom(4096)
        handle = run_sync(store.write_chunk(OWNER, data))
        assert run_sync(store.read_chunk(handle)) == data
        # Overhead bounded by one frame header.
        assert store.stats.stored_bytes <= len(data) + FRAME_OVERHEAD

    def test_bad_level_rejected(self):
        pool = SpongePool(65536, 65536)
        with pytest.raises(SpongeError):
            CompressedStore(LocalPoolStore(pool), level=0)

    def test_non_bytes_rejected(self):
        from repro.sponge.blob import Payload

        _pool, store = make_store()
        with pytest.raises(SpongeError):
            run_sync(store.write_chunk(OWNER, Payload.of([1], 8)))

    @given(st.binary(max_size=20_000))
    def test_roundtrip_property(self, data):
        pool = SpongePool(4 * (1 << 20), 1 << 20)
        store = CompressedStore(LocalPoolStore(pool))
        if not data:
            return
        handle = run_sync(store.write_chunk(OWNER, data))
        assert run_sync(store.read_chunk(handle)) == data


class TestComposition:
    def test_compress_then_encrypt_roundtrip(self):
        pool = SpongePool(8 * 65536, 65536)
        store = CompressedStore(
            EncryptedStore(LocalPoolStore(pool), KEY)
        )
        data = b"compressible secret " * 400
        handle = run_sync(store.write_chunk(OWNER, data))
        raw = pool.fetch(handle.ref[1], OWNER)
        assert b"compressible" not in raw  # sealed
        assert run_sync(store.read_chunk(handle)) == data

    def test_spongefile_over_compressed_chain(self):
        config = SpongeConfig(chunk_size=4096)
        pool = SpongePool(4 * 8192, 8192)
        chain = AllocationChain(
            local_store=CompressedStore(LocalPoolStore(pool)),
            tracker=None,
            remote_store_factory=None,
            disk_store=CompressedStore(MemoryDiskStore()),
            config=config,
        )
        sf = SpongeFile(OWNER, chain, config)
        payload = b"row,row,row,your,boat\n" * 3000  # ~64 KB, compressible
        sf.write_all(payload)
        sf.close_sync()
        assert sf.read_all() == payload
        sf.delete_sync()
