"""In-process SpongeServer QoS: admission, pressure demotion, faults.

Four chunks of pool, a 0.75 high-water mark, and a memory-backed
demote store make every admission decision traceable by hand.
"""

import pytest

from repro.backends.memory_backends import MemoryDiskStore
from repro.errors import ChunkLostError, OutOfSpongeMemory, QuotaDeferError
from repro.faults.hooks import injected
from repro.faults.plan import FaultPlan
from repro.sponge.chunk import TaskId
from repro.sponge.gc import TaskRegistry
from repro.sponge.pool import SpongePool
from repro.sponge.quota import QuotaPolicy
from repro.sponge.server import SpongeServer

from .conftest import CHUNK

POOL_CHUNKS = 4


def make_server(registry=None, demote=True, high_water=0.75):
    pool = SpongePool(POOL_CHUNKS * CHUNK, CHUNK)
    liveness = registry.probe_for_host("h0") if registry else None
    server = SpongeServer(
        server_id="sponge@h0",
        host="h0",
        pool=pool,
        quota=QuotaPolicy(capacity=POOL_CHUNKS * CHUNK, high_water=high_water),
        local_liveness=liveness,
        demote_store=MemoryDiskStore(store_id="h0/demote") if demote else None,
    )
    return server


def fill(server, owner, chunks, payload=b"A"):
    """Write ``chunks`` full chunks for ``owner``; returns the indices."""
    return [
        server.alloc_and_store(owner, payload * CHUNK)
        for _ in range(chunks)
    ]


class TestPressureDemotion:
    def test_newcomer_triggers_demotion_of_cold_chunks(self):
        server = make_server()
        a = TaskId("h0", "etl-1")
        b = TaskId("h1", "web-1")
        indices = fill(server, a, POOL_CHUNKS)  # sole tenant fills the pool
        assert server.pool.used_chunks == POOL_CHUNKS

        idx_b = server.alloc_and_store(b, b"B" * CHUNK)
        # Relief demotes down to high_water: 4 resident + 1 incoming
        # must become <= 3, so a's two coldest chunks went to disk.
        assert server.stats.demotions == 2
        assert (a, indices[0]) in server._demoted
        assert (a, indices[1]) in server._demoted
        assert server.pool.used_chunks == POOL_CHUNKS - 1
        # Demoted bytes stay charged: a still owns its four chunks.
        assert server.quota.used_by(a) == POOL_CHUNKS * CHUNK
        assert server.read(b, idx_b) == b"B" * CHUNK

    def test_demoted_chunk_reads_back_byte_exact(self):
        server = make_server()
        a = TaskId("h0", "etl-1")
        payloads = [bytes([i]) * CHUNK for i in range(POOL_CHUNKS)]
        indices = [server.alloc_and_store(a, p) for p in payloads]
        fill(server, TaskId("h1", "web-1"), 1, payload=b"B")
        assert server.stats.demotions == 2
        for idx, payload in zip(indices, payloads):
            assert bytes(server.read(a, idx)) == payload
        assert server.stats.demoted_reads == 2

    def test_free_of_demoted_chunk_releases_quota(self):
        server = make_server()
        a = TaskId("h0", "etl-1")
        indices = fill(server, a, POOL_CHUNKS)
        fill(server, TaskId("h1", "web-1"), 1, payload=b"B")
        demoted_idx = indices[0]
        assert (a, demoted_idx) in server._demoted
        before = server.quota.used_by(a)
        server.free(a, demoted_idx)
        assert server.quota.used_by(a) == before - CHUNK
        assert (a, demoted_idx) not in server._demoted
        # A second free of the same chunk is a real error, not a
        # silent quota drain.
        with pytest.raises(Exception):
            server.free(a, demoted_idx)
        assert server.quota.release_underflow == 0

    def test_elasticity_prefers_demoting_non_readers(self):
        server = make_server()
        reader = TaskId("h0", "hot-1")
        writer = TaskId("h1", "cold-1")
        hot = fill(server, reader, 2, payload=b"R")
        cold = fill(server, writer, 2, payload=b"W")
        for _ in range(3):  # observed re-reads mark `hot` inelastic
            for idx in hot:
                server.read(reader, idx)
        server.alloc_and_store(TaskId("h2", "new-1"), b"N" * CHUNK)
        # Both of the write-only tenant's chunks were the victims.
        assert all((writer, idx) in server._demoted for idx in cold)
        assert not any((reader, idx) in server._demoted for idx in hot)

    def test_no_demote_store_means_deferral(self):
        server = make_server(demote=False)
        a = TaskId("h0", "etl-1")
        fill(server, a, POOL_CHUNKS)
        # Past its share with nowhere to down-tier: retryable defer.
        with pytest.raises(QuotaDeferError):
            server.alloc_and_store(a, b"A" * CHUNK)
        assert server.stats.remote_denied == 1

    def test_local_pool_chunks_are_never_demoted(self):
        server = make_server()
        local = TaskId("h0", "local-1")
        # A local task bypasses the server and grabs pool slots
        # directly: no _chunk_info entry, so not a demotion candidate.
        for _ in range(POOL_CHUNKS):
            idx = server.pool.allocate(local)
            server.pool.store(idx, local, b"L" * CHUNK)
        with pytest.raises(OutOfSpongeMemory):
            server.alloc_and_store(TaskId("h1", "web-1"), b"B" * CHUNK)
        assert server.stats.demotions == 0

    def test_gc_drops_dead_owners_demoted_chunks_and_quota(self):
        registry = TaskRegistry()
        server = make_server(registry=registry)
        a = TaskId("h0", "etl-1")
        b = TaskId("h0", "web-1")
        registry.start(a)
        registry.start(b)
        fill(server, a, POOL_CHUNKS)
        fill(server, b, 1, payload=b"B")
        assert server._demoted  # pressure demoted some of a's chunks
        registry.finish(a)
        server.run_gc()
        assert server.quota.used_by(a) == 0
        assert not any(owner == a for (owner, _i) in server._demoted)
        assert not any(owner == a for (owner, _i) in server._chunk_info)
        # The survivor is untouched.
        assert server.quota.used_by(b) == CHUNK


class TestQosFaultInjection:
    def test_defer_admission_plan_raises_retryable_defer(self):
        server = make_server()
        a = TaskId("h0", "etl-1")
        with injected(FaultPlan().defer_admission(times=1)):
            with pytest.raises(QuotaDeferError):
                server.alloc_and_store(a, b"A" * CHUNK)
            # Injection is pre-admission: nothing was charged.
            assert server.quota.used_by(a) == 0
            # The rule is exhausted; the retry lands.
            server.alloc_and_store(a, b"A" * CHUNK)

    def test_defer_admission_matches_tenant(self):
        server = make_server()
        with injected(FaultPlan().defer_admission(tenant="etl")):
            server.alloc_and_store(TaskId("h0", "web-1"), b"B" * CHUNK)
            with pytest.raises(QuotaDeferError):
                server.alloc_and_store(TaskId("h0", "etl-1"), b"A" * CHUNK)

    def test_fail_demotion_keeps_victim_resident(self):
        server = make_server()
        a = TaskId("h0", "etl-1")
        indices = fill(server, a, POOL_CHUNKS)
        with injected(FaultPlan().fail_demotion()):
            # Demotion fails, pool stays full: the incoming write is
            # refused, and the would-be victim is intact.
            with pytest.raises(OutOfSpongeMemory):
                server.alloc_and_store(TaskId("h1", "web-1"), b"B" * CHUNK)
        assert server.stats.demotions == 0
        assert not server._demoted
        for idx in indices:
            assert (a, idx) in server._chunk_info
            assert bytes(server.read(a, idx)) == b"A" * CHUNK

    def test_demoted_read_after_store_loss_is_chunk_lost(self):
        server = make_server()
        a = TaskId("h0", "etl-1")
        indices = fill(server, a, POOL_CHUNKS)
        fill(server, TaskId("h1", "web-1"), 1, payload=b"B")
        assert (a, indices[0]) in server._demoted
        server.demote_store._files.clear()  # the down-tier disk died
        with pytest.raises(ChunkLostError):
            server.read(a, indices[0])
