"""Batched allocation: lease bookkeeping, striping, and fallbacks.

Covers the pure pieces of the batched data path that the runtime tests
exercise only end-to-end: the :class:`LeaseTable` deadline bookkeeping,
the tracker's load EWMA, group striping across candidate servers, the
lease top-up hysteresis, and the degradation paths (non-batch stores,
refusing servers, unreachable servers evicting tracker cache entries).
"""

from collections import deque

import pytest

from repro.backends.memory_backends import MemoryDiskStore, ServerStore
from repro.errors import StoreUnavailableError
from repro.obs.metrics import Ewma
from repro.sponge.allocator import AllocationChain
from repro.sponge.chunk import ChunkLocation, TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.gc import LeaseTable
from repro.sponge.pool import SpongePool
from repro.sponge.server import SpongeServer
from repro.sponge.spongefile import SpongeFile
from repro.sponge.store import run_sync
from repro.sponge.tracker import MemoryTracker

CHUNK = 1024
OWNER = TaskId("h0", "t")


# -- LeaseTable ---------------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestLeaseTable:
    def test_grant_then_consume(self):
        table = LeaseTable(clock=FakeClock())
        table.grant([1, 2, 3], OWNER, ttl=5.0)
        assert table.outstanding == 3
        assert table.indices_for(OWNER) == [1, 2, 3]
        assert table.consume(2, OWNER)
        assert not table.consume(2, OWNER)  # gone once taken
        assert table.outstanding == 2

    def test_consume_rejects_wrong_owner(self):
        table = LeaseTable(clock=FakeClock())
        table.grant([7], OWNER, ttl=5.0)
        other = TaskId("h1", "intruder")
        assert not table.consume(7, other)
        assert table.outstanding == 1  # still held for the real owner

    def test_release(self):
        table = LeaseTable(clock=FakeClock())
        table.grant([4], OWNER, ttl=5.0)
        assert table.release(4, OWNER)
        assert not table.release(4, OWNER)
        assert table.outstanding == 0

    def test_expire_pops_only_past_deadline(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        table.grant([1], OWNER, ttl=5.0)
        clock.now += 3.0
        table.grant([2], OWNER, ttl=5.0)
        clock.now += 2.5  # index 1 is 5.5s old, index 2 only 2.5s
        dead = table.expire()
        assert dead == [(1, OWNER)]
        assert table.indices_for(OWNER) == [2]

    def test_expired_lease_cannot_be_consumed(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        table.grant([9], OWNER, ttl=1.0)
        clock.now += 2.0
        table.expire()
        assert not table.consume(9, OWNER)

    def test_prune_drops_entries_the_pool_already_freed(self):
        table = LeaseTable(clock=FakeClock())
        table.grant([1, 2], OWNER, ttl=60.0)
        # Dead-owner GC freed chunk 1 underneath the lease.
        dropped = table.prune(lambda index, owner: index != 1)
        assert dropped == 1
        assert table.indices_for(OWNER) == [2]


# -- Ewma ---------------------------------------------------------------------


class TestEwma:
    def test_empty_reads_zero(self):
        assert Ewma().value == 0.0

    def test_first_sample_is_taken_whole(self):
        ewma = Ewma(alpha=0.3)
        assert ewma.update(10.0) == 10.0

    def test_updates_move_fractionally_toward_sample(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(10.0)
        assert ewma.update(20.0) == pytest.approx(15.0)
        assert ewma.update(15.0) == pytest.approx(15.0)

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha_rejected(self, alpha):
        with pytest.raises(ValueError):
            Ewma(alpha=alpha)


# -- batched placement across the chain ---------------------------------------


class BatchServerStore(ServerStore):
    """In-process server store that advertises (and records) batch ops."""

    supports_batch = True

    def __init__(self, server, log) -> None:
        super().__init__(server)
        self.log = log

    def write_chunk_batch(self, owner, blobs):
        handles = [self._write(owner, blob) for blob in blobs]
        self.log.append((self.store_id, len(blobs)))
        return handles
        yield  # pragma: no cover


def build_cluster(hosts, pool_chunks, config, store_cls=BatchServerStore,
                  tracker=None, **store_kw):
    tracker = tracker if tracker is not None else MemoryTracker()
    servers = {}
    for host in hosts:
        pool = SpongePool(pool_chunks * config.chunk_size, config.chunk_size)
        servers[host] = SpongeServer(
            f"sponge@{host}", host=host, pool=pool, rack="rack0"
        )
        tracker.register(servers[host])
    tracker.poll_once()

    def factory(info):
        host = info.host or info.server_id.split("@")[1]
        return store_cls(servers[host], **store_kw)

    chain = AllocationChain(
        local_store=None,
        tracker=tracker,
        remote_store_factory=factory,
        disk_store=MemoryDiskStore(),
        host="h0",
        config=config,
    )
    return chain, servers, tracker


class TestBatchStriping:
    def test_groups_stripe_across_candidates(self):
        """12 chunks at depth 4 -> one batched call on each of 3 servers."""
        log = []
        config = SpongeConfig(chunk_size=CHUNK, batch_depth=4)
        chain, _servers, _ = build_cluster(
            ["h1", "h2", "h3"], pool_chunks=8, config=config, log=log)
        session = chain.new_session(OWNER)
        blobs = [bytes([i]) * CHUNK for i in range(12)]
        results = run_sync(session.allocate_batch(blobs, last_handle=None))
        assert len(log) == 3
        assert sorted(n for _sid, n in log) == [4, 4, 4]
        assert len({sid for sid, _n in log}) == 3  # three distinct servers
        # Handles come back in blob order and read back intact.
        for blob, (handle, appended) in zip(blobs, results):
            assert not appended
            store = chain.store_for(handle)
            assert bytes(run_sync(store.read_chunk(handle))) == blob

    def test_non_batch_store_gets_per_chunk_writes(self):
        """A store without batch support still lands every chunk."""
        config = SpongeConfig(chunk_size=CHUNK, batch_depth=4)
        chain, servers, _ = build_cluster(
            ["h1"], pool_chunks=8, config=config, store_cls=ServerStore)
        session = chain.new_session(OWNER)
        blobs = [bytes([i]) * CHUNK for i in range(4)]
        results = run_sync(session.allocate_batch(blobs, last_handle=None))
        assert all(h.location is ChunkLocation.REMOTE_MEMORY
                   for h, _a in results)
        assert servers["h1"].pool.free_chunks == 4

    def test_refusing_server_spills_group_to_the_next(self):
        """A stale-full candidate is dropped; its group lands elsewhere."""
        log = []
        config = SpongeConfig(chunk_size=CHUNK, batch_depth=2)
        chain, servers, _ = build_cluster(
            ["h1", "h2"], pool_chunks=4, config=config, log=log)
        # Fill one pool behind the tracker's back (stale entry).
        hog = TaskId("h1", "hog")
        pool = servers["h1"].pool
        while pool.free_chunks:
            pool.store(pool.allocate(hog), hog, b"hog")
        session = chain.new_session(OWNER)
        blobs = [bytes([i]) * CHUNK for i in range(4)]
        results = run_sync(session.allocate_batch(blobs, last_handle=None))
        assert all(h.store_id == "sponge@h2" for h, _a in results)
        assert chain.stats.remote_stale_misses >= 1


class UnreachableStore(ServerStore):
    supports_batch = True

    def write_chunk_batch(self, owner, blobs):
        raise StoreUnavailableError(f"{self.store_id} is gone")
        yield  # pragma: no cover

    def _write(self, owner, data):
        raise StoreUnavailableError(f"{self.store_id} is gone")


class InvalidatingTracker(MemoryTracker):
    def __init__(self) -> None:
        super().__init__()
        self.invalidated = []

    def invalidate_server(self, server_id: str) -> None:
        self.invalidated.append(server_id)


class TestUnreachableServer:
    def test_unreachable_server_evicts_tracker_cache_entry(self):
        """Dead server -> session drops it AND tells the tracker client,
        so other sessions stop re-offering the entry for the TTL."""
        config = SpongeConfig(chunk_size=CHUNK, batch_depth=2)
        chain, _servers, tracker = build_cluster(
            ["h1"], pool_chunks=4, config=config,
            store_cls=UnreachableStore, tracker=InvalidatingTracker())
        session = chain.new_session(OWNER)
        blobs = [b"x" * CHUNK, b"y" * CHUNK]
        results = run_sync(session.allocate_batch(blobs, last_handle=None))
        # The batch fell through to disk rather than failing.
        assert all(h.location is ChunkLocation.LOCAL_DISK
                   for h, _a in results)
        assert "sponge@h1" in tracker.invalidated
        assert chain.stats.remote_unreachable >= 1


# -- lease top-up hysteresis --------------------------------------------------


class LeasingStore(BatchServerStore):
    """Batch store with a client-side lease cache, consumption included."""

    def __init__(self, server, log, lease_log) -> None:
        super().__init__(server, log)
        self.lease_log = lease_log
        self._held = deque()

    def lease(self, owner, count):
        self.lease_log.append(count)
        self._held.extend(range(count))
        return len(self._held)

    def leases_held(self, owner):
        return len(self._held)

    def write_chunk_batch(self, owner, blobs):
        for _ in range(min(len(blobs), len(self._held))):
            self._held.popleft()
        return (yield from super().write_chunk_batch(owner, blobs))


class TestLeaseHysteresis:
    def test_top_up_only_below_half_target(self):
        """One lease call per ~ahead/2 consumed chunks, not per batch."""
        log, lease_log = [], []
        config = SpongeConfig(chunk_size=CHUNK, batch_depth=2, lease_ahead=4)
        chain, _servers, _ = build_cluster(
            ["h1"], pool_chunks=16, config=config,
            store_cls=LeasingStore, log=log, lease_log=lease_log)
        session = chain.new_session(OWNER)
        for batch_no in range(3):
            blobs = [bytes([batch_no]) * CHUNK, bytes([batch_no + 10]) * CHUNK]
            run_sync(session.allocate_batch(blobs, last_handle=None))
        # Batch 1: holding 0 -> top up to 4.  Batch 2: holding 2 (>= half
        # of 4) -> skip.  Batch 3: holding 0 -> top up again.
        assert lease_log == [4, 4]


# -- batched spill end-to-end on the in-process backend -----------------------


class TestBatchedSpongeFile:
    def test_batched_spill_round_trips_in_order(self):
        log = []
        config = SpongeConfig(chunk_size=CHUNK, batch_depth=4)
        chain, _servers, _ = build_cluster(
            ["h1", "h2"], pool_chunks=8, config=config, log=log)
        payload = bytes(range(256)) * 4 * 8  # 8 chunks
        spongefile = SpongeFile(OWNER, chain, config=config)
        spongefile.write_all(payload)
        spongefile.close_sync()
        assert log, "no batched RPC was issued"
        assert bytes(spongefile.read_all()) == payload
        spongefile.delete_sync()
