"""SpongeFile lifecycle, chunking, and spill-chain behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChunkAllocationError, SpongeError, SpongeFileStateError
from repro.sponge.chunk import ChunkLocation, TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.spongefile import FileState, SpongeFile

from .conftest import CHUNK, MiniCluster


def make_file(cluster, owner, name="f", **kwargs):
    return SpongeFile(owner, cluster.chain(owner.host), cluster.config,
                      name=name, **kwargs)


class TestLifecycle:
    def test_write_close_read_delete(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.write_all(b"hello ")
        sf.write_all(b"world")
        sf.close_sync()
        assert sf.read_all() == b"hello world"
        sf.delete_sync()
        assert sf.state is FileState.DELETED

    def test_write_after_close_rejected(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.close_sync()
        with pytest.raises(SpongeFileStateError):
            sf.write_all(b"late")

    def test_read_before_close_rejected(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.write_all(b"x")
        with pytest.raises(SpongeFileStateError):
            sf.open_reader()

    def test_double_delete_rejected(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.close_sync()
        sf.delete_sync()
        with pytest.raises(SpongeFileStateError):
            sf.delete_sync()

    def test_delete_while_writing_is_allowed_cleanup(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.write_all(b"x" * (3 * CHUNK))
        sf.delete_sync()
        # Everything the file held has been returned to the pool.
        assert cluster.pools[owner.host].used_chunks == 0

    def test_empty_file_roundtrip(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.close_sync()
        assert sf.read_all() == b""
        assert sf.chunk_count() == 0
        sf.delete_sync()

    def test_reopen_reader_rereads_from_start(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.write_all(b"abc" * 100)
        sf.close_sync()
        assert sf.read_all() == b"abc" * 100
        assert sf.read_all() == b"abc" * 100


class TestChunking:
    def test_buffered_until_chunk_boundary(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.write_all(b"x" * (CHUNK - 1))
        assert sf.chunk_count() == 0  # still buffered
        sf.write_all(b"x")
        sf.close_sync()  # drains the pending async write
        assert sf.chunk_count() == 1

    def test_large_write_splits_into_chunks(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.write_all(b"a" * (3 * CHUNK + 10))
        sf.close_sync()
        assert sf.chunk_count() == 4
        assert sf.handles[-1].nbytes == 10
        assert sf.size == 3 * CHUNK + 10

    def test_chunks_have_fixed_size_except_last(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.write_all(b"b" * (5 * CHUNK + 123))
        sf.close_sync()
        sizes = [h.nbytes for h in sf.handles]
        assert sizes[:-1] == [CHUNK] * 5
        assert sizes[-1] == 123

    def test_content_preserved_across_chunk_boundaries(self, cluster, owner):
        payload = bytes(range(256)) * 16  # 4 KB, spans 4 chunks
        sf = make_file(cluster, owner)
        for i in range(0, len(payload), 100):
            sf.write_all(payload[i : i + 100])
        sf.close_sync()
        assert sf.read_all() == payload

    @settings(max_examples=25, deadline=None)
    @given(writes=st.lists(st.binary(min_size=0, max_size=3 * CHUNK), max_size=8))
    def test_roundtrip_property(self, writes):
        cluster = MiniCluster(
            ["h0", "h1"], pool_chunks=64, config=SpongeConfig(chunk_size=CHUNK)
        )
        owner = TaskId("h0", "prop-task")
        sf = SpongeFile(owner, cluster.chain("h0"), cluster.config)
        for data in writes:
            sf.write_all(data)
        sf.close_sync()
        assert sf.read_all() == b"".join(writes)
        sf.delete_sync()
        for pool in cluster.pools.values():
            assert pool.used_chunks == 0


class TestSpillOrder:
    def test_local_pool_preferred(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.write_all(b"x" * (2 * CHUNK))
        sf.close_sync()
        assert all(
            h.location is ChunkLocation.LOCAL_MEMORY for h in sf.handles
        )

    def test_overflow_goes_remote(self, cluster, owner):
        sf = make_file(cluster, owner)
        # Local pool holds 4 chunks; write 6 full chunks.
        sf.write_all(b"x" * (6 * CHUNK))
        sf.close_sync()
        locations = [h.location for h in sf.handles]
        assert locations.count(ChunkLocation.LOCAL_MEMORY) == 4
        assert locations.count(ChunkLocation.REMOTE_MEMORY) == 2

    def test_remote_exhausted_falls_to_disk(self, config, owner):
        cluster = MiniCluster(["h0", "h1"], pool_chunks=2, config=config)
        sf = SpongeFile(owner, cluster.chain("h0"), config)
        sf.write_all(b"x" * (6 * CHUNK))  # 2 local + 2 remote + 2 disk
        sf.close_sync()
        locations = [h.location for h in sf.handles]
        assert ChunkLocation.LOCAL_DISK in locations
        assert sf.read_all() == b"x" * (6 * CHUNK)

    def test_disk_chunks_coalesce(self, config, owner):
        cluster = MiniCluster(["h0"], pool_chunks=1, config=config)
        sf = SpongeFile(owner, cluster.chain("h0"), config)
        sf.write_all(b"y" * (5 * CHUNK))
        sf.close_sync()
        disk_handles = [
            h for h in sf.handles if h.location is ChunkLocation.LOCAL_DISK
        ]
        # 4 chunks went to disk but coalesced into ONE on-disk chunk.
        assert len(disk_handles) == 1
        assert disk_handles[0].nbytes == 4 * CHUNK
        assert sf.stats.disk_appends == 3
        assert sf.read_all() == b"y" * (5 * CHUNK)

    def test_disk_full_falls_to_dfs(self, config, owner):
        cluster = MiniCluster(
            ["h0"], pool_chunks=1, config=config, disk_capacity=CHUNK
        )
        sf = SpongeFile(owner, cluster.chain("h0"), config)
        sf.write_all(b"z" * (4 * CHUNK))
        sf.close_sync()
        locations = [h.location for h in sf.handles]
        assert ChunkLocation.DFS in locations
        assert sf.read_all() == b"z" * (4 * CHUNK)

    def test_everything_full_raises(self, config, owner):
        cluster = MiniCluster(
            ["h0"], pool_chunks=1, config=config,
            disk_capacity=CHUNK, with_dfs=False,
        )
        sf = SpongeFile(owner, cluster.chain("h0"), config)
        with pytest.raises(ChunkAllocationError):
            sf.write_all(b"w" * (4 * CHUNK))
            sf.close_sync()


class TestStats:
    def test_stats_track_chunks_and_bytes(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.write_all(b"s" * (2 * CHUNK + 7))
        sf.close_sync()
        assert sf.stats.bytes_written == 2 * CHUNK + 7
        assert sf.stats.total_chunks == 3
        sf.read_all()
        assert sf.stats.bytes_read == 2 * CHUNK + 7

    def test_chain_stats_aggregate_across_files(self, cluster, owner):
        for i in range(2):
            sf = make_file(cluster, owner, name=f"f{i}")
            sf.write_all(b"q" * CHUNK)
            sf.close_sync()
        stats = cluster.chain(owner.host).stats
        assert stats.total_chunks == 2
        assert stats.total_bytes == 2 * CHUNK


class TestByteReader:
    def test_read_n_bytes(self, cluster, owner):
        sf = make_file(cluster, owner)
        payload = bytes(range(250)) * 10
        sf.write_all(payload)
        sf.close_sync()
        reader = sf.open_reader()
        out = b""
        while True:
            piece = sf.executor  # noqa: F841 - exercise attribute access
            got = _read(reader, 700)
            if not got:
                break
            out += got
        assert out == payload

    def test_read_past_eof_returns_empty(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.write_all(b"tiny")
        sf.close_sync()
        reader = sf.open_reader()
        assert _read(reader, 100) == b"tiny"
        assert _read(reader, 100) == b""

    def test_reads_straddle_chunk_boundaries(self, cluster, owner):
        # Request sizes that never divide the chunk size, so every read
        # either splits a leftover or stitches a leftover to the next
        # chunk's head.
        sf = make_file(cluster, owner)
        payload = bytes(range(256)) * (3 * CHUNK // 256)
        sf.write_all(payload)
        sf.close_sync()
        reader = sf.open_reader()
        offset = 0
        for size in (300, CHUNK - 1, 1, 2 * CHUNK + 7, 900):
            got = _read(reader, size)
            assert got == payload[offset:offset + size]
            offset += len(got)
        assert _read(reader, CHUNK) == payload[offset:]
        assert reader.exhausted
        assert _read(reader, 1) == b""

    def test_split_leftover_survives_in_reader(self, cluster, owner):
        sf = make_file(cluster, owner)
        sf.write_all(b"a" * CHUNK)
        sf.close_sync()
        reader = sf.open_reader()
        assert _read(reader, 300) == b"a" * 300
        # The unconsumed tail of the chunk stays buffered — the next
        # read must not refetch.
        assert not reader.exhausted
        assert len(bytes(reader._leftover)) == CHUNK - 300
        assert _read(reader, CHUNK) == b"a" * (CHUNK - 300)

    def test_read_larger_than_file_returns_remainder(self, cluster, owner):
        sf = make_file(cluster, owner)
        payload = b"r" * (CHUNK + CHUNK // 2)
        sf.write_all(payload)
        sf.close_sync()
        reader = sf.open_reader()
        assert _read(reader, 10 * CHUNK) == payload
        assert _read(reader, 10 * CHUNK) == b""


class TestReaderErrorPath:
    def test_lost_chunk_drains_prefetch(self, cluster, owner):
        from repro.errors import ChunkLostError
        from repro.sponge.store import run_sync

        config = SpongeConfig(chunk_size=CHUNK, prefetch_depth=2)
        mini = MiniCluster(["h0"], pool_chunks=8, config=config)
        sf = SpongeFile(TaskId("h0", "lost"), mini.chain("h0"), config)
        sf.write_all(b"q" * (4 * CHUNK))
        sf.close_sync()
        reader = sf.open_reader()
        # Free every chunk after the first behind the reader's back,
        # before any prefetch is issued.
        chain = sf.session.chain
        for handle in sf.handles[1:]:
            chain.store_for(handle)._free(handle)
        assert run_sync(reader.next_chunk()) == b"q" * CHUNK
        assert len(reader._prefetched) == 2  # pipeline topped up
        with pytest.raises(ChunkLostError):
            run_sync(reader.next_chunk())
        # The failed read absorbed the other in-flight prefetches; an
        # unobserved completion would crash later instead of failing
        # just this read.
        assert len(reader._prefetched) == 0


def _read(reader, n):
    from repro.sponge.store import run_sync

    return run_sync(reader.read(n))
