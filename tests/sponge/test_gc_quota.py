"""Garbage collection of orphaned chunks and quota enforcement."""

import pytest

from repro.errors import QuotaExceededError
from repro.sponge.chunk import ChunkLocation, TaskId
from repro.sponge.gc import run_cluster_gc
from repro.sponge.spongefile import SpongeFile

from .conftest import CHUNK, MiniCluster


class TestGarbageCollection:
    def test_orphans_of_dead_local_task_reclaimed(self, cluster, config):
        owner = TaskId("h0", "leaky")
        cluster.registry.start(owner)
        sf = SpongeFile(owner, cluster.chain("h0"), config)
        sf.write_all(b"x" * (2 * CHUNK))
        sf.close_sync()
        # The task dies without deleting its SpongeFile.
        cluster.registry.finish(owner)
        report = run_cluster_gc(list(cluster.servers.values()))
        assert report.chunks_freed == 2
        assert cluster.pools["h0"].used_chunks == 0

    def test_live_task_chunks_survive_gc(self, cluster, config):
        owner = TaskId("h0", "alive")
        cluster.registry.start(owner)
        sf = SpongeFile(owner, cluster.chain("h0"), config)
        sf.write_all(b"x" * (2 * CHUNK))
        sf.close_sync()
        report = run_cluster_gc(list(cluster.servers.values()))
        assert report.chunks_freed == 0
        assert sf.read_all() == b"x" * (2 * CHUNK)

    def test_remote_owner_liveness_consulted_via_peer(self, cluster, config):
        """Chunks on h1 owned by a task on h0: h1's server must ask
        h0's server whether the owner is alive."""
        owner = TaskId("h0", "spiller")
        cluster.registry.start(owner)
        sf = SpongeFile(owner, cluster.chain("h0"), config)
        sf.write_all(b"x" * (6 * CHUNK))  # overflows the 4-chunk local pool
        sf.close_sync()
        remote = [
            h for h in sf.handles if h.location is ChunkLocation.REMOTE_MEMORY
        ]
        assert remote, "test needs remote chunks"
        # While alive: nothing reclaimed anywhere.
        assert run_cluster_gc(list(cluster.servers.values())).chunks_freed == 0
        cluster.registry.finish(owner)
        report = run_cluster_gc(list(cluster.servers.values()))
        assert report.chunks_freed == 6
        for pool in cluster.pools.values():
            assert pool.used_chunks == 0

    def test_unknown_host_owner_treated_as_dead(self, cluster):
        ghost = TaskId("vanished-host", "ghost")
        pool = cluster.pools["h1"]
        pool.store(pool.allocate(ghost), ghost, b"orphan")
        report = run_cluster_gc(list(cluster.servers.values()))
        assert report.chunks_freed == 1

    def test_gc_report_names_servers(self, cluster, config):
        owner = TaskId("h0", "dead")
        sf = SpongeFile(owner, cluster.chain("h0"), config)
        sf.write_all(b"x" * CHUNK)
        sf.close_sync()
        report = run_cluster_gc(list(cluster.servers.values()))
        assert report.per_server == {"sponge@h0": 1}


class TestQuota:
    def make_quota_cluster(self, config, quota_chunks):
        return MiniCluster(
            ["h0", "h1"],
            pool_chunks=8,
            config=config,
            quota=quota_chunks * config.chunk_size,
            local_pool=False,  # force everything through servers
        )

    def test_server_refuses_over_quota(self, config):
        cluster = self.make_quota_cluster(config, quota_chunks=2)
        owner = TaskId("h0", "greedy")
        server = cluster.servers["h1"]
        server.alloc_and_store(owner, b"x" * CHUNK)
        server.alloc_and_store(owner, b"x" * CHUNK)
        with pytest.raises(QuotaExceededError):
            server.alloc_and_store(owner, b"x" * CHUNK)

    def test_quota_released_on_free(self, config):
        cluster = self.make_quota_cluster(config, quota_chunks=1)
        owner = TaskId("h0", "t")
        server = cluster.servers["h1"]
        index = server.alloc_and_store(owner, b"x" * CHUNK)
        server.free(owner, index)
        # Quota freed: the next allocation succeeds.
        server.alloc_and_store(owner, b"x" * CHUNK)

    def test_quota_released_by_gc(self, config):
        cluster = self.make_quota_cluster(config, quota_chunks=1)
        owner = TaskId("h0", "dead")
        server = cluster.servers["h1"]
        server.alloc_and_store(owner, b"x" * CHUNK)
        # Owner dies without freeing; GC reclaims chunk AND quota.
        run_cluster_gc([server])
        assert server.quota.usage.get(owner, 0) == 0
        server.alloc_and_store(owner, b"x" * CHUNK)

    def test_offenders_listed(self, config):
        cluster = self.make_quota_cluster(config, quota_chunks=1)
        owner = TaskId("h0", "greedy")
        server = cluster.servers["h1"]
        server.alloc_and_store(owner, b"x" * CHUNK)
        assert server.quota.offenders() == [owner]
