"""Property-based round-trip test for SpongeFile (random geometry).

Whatever the chunk size, the shapes of the writes, the pipeline depths
(``async_write_depth``/``prefetch_depth``), or the mix of tier
capacities — every byte written must read back, byte-exact and in
order, and deletion must return the pools to their starting occupancy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.memory_backends import (
    LocalPoolStore,
    MemoryDfsStore,
    MemoryDiskStore,
    ServerStore,
)
from repro.sponge.allocator import AllocationChain
from repro.sponge.chunk import TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.gc import wire_peers
from repro.sponge.pool import SpongePool
from repro.sponge.server import SpongeServer
from repro.sponge.spongefile import SpongeFile
from repro.sponge.tracker import MemoryTracker


def build_chain(chunk_size, config, local_chunks, remote_chunks, disk_chunks):
    tracker = MemoryTracker()
    servers = {}
    for index, chunks in enumerate(remote_chunks):
        host = f"peer{index}"
        pool = SpongePool(max(1, chunks) * chunk_size, chunk_size)
        servers[host] = SpongeServer(f"sponge@{host}", host=host, pool=pool)
        tracker.register(servers[host])
    if servers:
        wire_peers(list(servers.values()))
    tracker.poll_once()
    local_pool = SpongePool(max(1, local_chunks) * chunk_size, chunk_size)
    chain = AllocationChain(
        local_store=LocalPoolStore(local_pool, "local/pool"),
        tracker=tracker,
        remote_store_factory=lambda info: ServerStore(servers[info.host]),
        disk_store=MemoryDiskStore(
            capacity=None if disk_chunks is None else disk_chunks * chunk_size
        ),
        dfs_store=MemoryDfsStore(),
        host="local",
        config=config,
    )
    return chain, local_pool, servers


def deterministic_payload(total):
    return bytes((i * 131 + 17) % 256 for i in range(total))


@settings(max_examples=40, deadline=None)
@given(
    chunk_size=st.integers(16, 2048),
    write_sizes=st.lists(st.integers(1, 3000), min_size=1, max_size=12),
    async_write_depth=st.integers(1, 4),
    prefetch_depth=st.integers(1, 4),
    local_chunks=st.integers(1, 4),
    remote_chunks=st.lists(st.integers(0, 4), min_size=0, max_size=3),
    disk_chunks=st.one_of(st.none(), st.integers(0, 6)),
)
def test_round_trip_is_byte_exact(chunk_size, write_sizes, async_write_depth,
                                  prefetch_depth, local_chunks,
                                  remote_chunks, disk_chunks):
    config = SpongeConfig(
        chunk_size=chunk_size,
        async_write_depth=async_write_depth,
        prefetch_depth=prefetch_depth,
    )
    chain, local_pool, servers = build_chain(
        chunk_size, config, local_chunks, remote_chunks, disk_chunks
    )
    payload = deterministic_payload(sum(write_sizes))

    owner = TaskId("local", "prop")
    spongefile = SpongeFile(owner, chain, config)
    cursor = 0
    for size in write_sizes:
        spongefile.write_all(payload[cursor:cursor + size])
        cursor += size
    spongefile.close_sync()

    assert bytes(spongefile.read_all()) == payload
    # Reading again must also be exact (chunks aren't consumed by reads).
    assert bytes(spongefile.read_all()) == payload

    spongefile.delete_sync()
    assert local_pool.used_chunks == 0
    for server in servers.values():
        assert server.pool.used_chunks == 0
