"""SpongeFile timing semantics on the simulator: async writes overlap
computation, prefetching hides fetch latency, costs track Table 1."""

import pytest

from repro.backends.sim_backends import SimSpongeDeployment
from repro.sim.cluster import ClusterSpec, SimCluster
from repro.sim.kernel import Environment
from repro.sim.node import NodeSpec
from repro.sponge import SimExecutor, SpongeConfig, SpongeFile, TaskId
from repro.util.units import GB, MB


def deploy(env, nodes=3, sponge_pool=64 * MB, config=None):
    spec = ClusterSpec(
        racks=1, nodes_per_rack=nodes,
        node=NodeSpec(memory=16 * GB, sponge_pool=sponge_pool),
    )
    cluster = SimCluster(env, spec)
    return cluster, SimSpongeDeployment(env, cluster,
                                        config=config or SpongeConfig())


def drain_local_pool(deployment, node_id):
    pool = deployment.pools[node_id]
    hog = TaskId(node_id, "hog")
    while pool.free_chunks:
        pool.store(pool.allocate(hog), hog, b"")
    deployment.tracker.poll_once()


def run_write_read(env, deployment, node_id, nbytes, config,
                   compute_between_writes=0.0, compute_per_chunk=0.0):
    owner = TaskId(node_id, "timing")
    timings = {}

    def task():
        sf = SpongeFile(owner, deployment.chain(node_id), config,
                        executor=SimExecutor(env))
        start = env.now
        chunk = config.chunk_size
        for _ in range(nbytes // chunk):
            yield from sf.write(b"x" * chunk)
            if compute_between_writes:
                yield env.timeout(compute_between_writes)
        yield from sf.close()
        timings["write"] = env.now - start
        start = env.now
        reader = sf.open_reader()
        while True:
            data = yield from reader.next_chunk()
            if data is None:
                break
            if compute_per_chunk:
                yield env.timeout(compute_per_chunk)
        timings["read"] = env.now - start
        yield from sf.delete()

    env.run(env.process(task()))
    return timings


class TestAsyncWrites:
    def test_async_writes_overlap_compute(self):
        """With per-chunk compute comparable to the remote write cost,
        async writes hide one behind the other."""

        def measure(async_writes):
            config = SpongeConfig(async_writes=async_writes)
            env = Environment()
            cluster, deployment = deploy(env, config=config)
            node_id = cluster.node_ids()[0]
            drain_local_pool(deployment, node_id)
            timings = run_write_read(env, deployment, node_id, 32 * MB,
                                     config, compute_between_writes=0.008)
            return timings["write"]

        overlapped = measure(True)
        serialized = measure(False)
        assert overlapped < 0.75 * serialized

    def test_close_waits_for_outstanding_write(self):
        config = SpongeConfig()
        env = Environment()
        cluster, deployment = deploy(env, config=config)
        node_id = cluster.node_ids()[0]
        drain_local_pool(deployment, node_id)
        owner = TaskId(node_id, "closer")

        def task():
            sf = SpongeFile(owner, deployment.chain(node_id), config,
                            executor=SimExecutor(env))
            yield from sf.write(b"x" * (2 * MB))
            yield from sf.close()
            return sf

        sf = env.run(env.process(task()))
        # After close every chunk is recorded — none still in flight.
        assert sf.chunk_count() == 2
        assert env.now > 0.015  # two remote 1 MB chunks really cost time


class TestPrefetch:
    def test_prefetch_hides_fetch_latency(self):
        def measure(prefetch):
            config = SpongeConfig(prefetch=prefetch)
            env = Environment()
            cluster, deployment = deploy(env, config=config)
            node_id = cluster.node_ids()[0]
            drain_local_pool(deployment, node_id)
            timings = run_write_read(env, deployment, node_id, 32 * MB,
                                     config, compute_per_chunk=0.008)
            return timings["read"]

        with_prefetch = measure(True)
        without = measure(False)
        assert with_prefetch < 0.75 * without


class TestCostTracking:
    def test_local_spill_costs_one_memcpy(self):
        config = SpongeConfig()
        env = Environment()
        cluster, deployment = deploy(env, sponge_pool=64 * MB)
        node_id = cluster.node_ids()[0]
        timings = run_write_read(env, deployment, node_id, 16 * MB, config)
        # 16 chunks x ~1 ms/MB: writes serialize on the single pending
        # slot (~16 ms); reads pipeline via prefetch (~8 ms).
        assert timings["write"] == pytest.approx(0.016, rel=0.3)
        assert timings["read"] == pytest.approx(0.008, rel=0.35)

    def test_remote_spill_costs_track_network(self):
        config = SpongeConfig()
        env = Environment()
        cluster, deployment = deploy(env)
        node_id = cluster.node_ids()[0]
        drain_local_pool(deployment, node_id)
        timings = run_write_read(env, deployment, node_id, 16 * MB, config)
        # ~8.5 ms per 1 MB chunk over 1 GbE.
        assert 0.10 < timings["write"] < 0.18
