import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, OutOfSpongeMemory, SpongeError
from repro.sponge.chunk import TaskId
from repro.sponge.pool import SpongePool
from repro.util.units import MB

T1 = TaskId("host-a", "task-1")
T2 = TaskId("host-b", "task-2")


def make_pool(chunks=4, chunk_size=1 * MB):
    return SpongePool(pool_size=chunks * chunk_size, chunk_size=chunk_size)


class TestAllocation:
    def test_allocate_store_fetch_roundtrip(self):
        pool = make_pool()
        index = pool.allocate(T1)
        pool.store(index, T1, b"x" * 100)
        assert pool.fetch(index, T1) == b"x" * 100

    def test_capacity_accounting(self):
        pool = make_pool(chunks=3)
        assert pool.free_chunks == 3
        pool.allocate(T1)
        assert pool.used_chunks == 1
        assert pool.free_bytes == 2 * MB

    def test_exhaustion_raises(self):
        pool = make_pool(chunks=2)
        pool.allocate(T1)
        pool.allocate(T1)
        with pytest.raises(OutOfSpongeMemory):
            pool.allocate(T2)
        assert pool.stats.failed_allocations == 1

    def test_free_returns_chunk_to_pool(self):
        pool = make_pool(chunks=1)
        index = pool.allocate(T1)
        pool.free(index, T1)
        assert pool.allocate(T2) == index

    def test_double_free_rejected(self):
        pool = make_pool()
        index = pool.allocate(T1)
        pool.free(index, T1)
        with pytest.raises(SpongeError):
            pool.free(index)

    def test_wrong_owner_rejected(self):
        pool = make_pool()
        index = pool.allocate(T1)
        with pytest.raises(SpongeError):
            pool.store(index, T2, b"evil")
        with pytest.raises(SpongeError):
            pool.free(index, T2)

    def test_oversized_payload_rejected(self):
        pool = make_pool(chunk_size=1024)
        index = pool.allocate(T1)
        with pytest.raises(SpongeError):
            pool.store(index, T1, b"x" * 2048)

    def test_pool_too_small_rejected(self):
        with pytest.raises(ConfigError):
            SpongePool(pool_size=10, chunk_size=1 * MB)

    def test_segment_layout(self):
        pool = SpongePool(pool_size=8 * MB, chunk_size=1 * MB, segment_size=2 * MB)
        assert pool.num_segments == 4
        assert pool.segment_of(0) == 0
        assert pool.segment_of(3) == 1
        assert pool.segment_of(7) == 3


class TestGarbageCollection:
    def test_collect_frees_dead_owners_only(self):
        pool = make_pool(chunks=4)
        for _ in range(2):
            pool.store(pool.allocate(T1), T1, b"a")
        pool.store(pool.allocate(T2), T2, b"b")
        freed = pool.collect(lambda owner: owner == T2)
        assert freed == 2
        assert pool.owners() == {T2}
        pool.check_invariants()

    def test_collect_noop_when_all_alive(self):
        pool = make_pool()
        pool.allocate(T1)
        assert pool.collect(lambda owner: True) == 0

    def test_chunks_of(self):
        pool = make_pool(chunks=4)
        mine = [pool.allocate(T1) for _ in range(2)]
        pool.allocate(T2)
        assert sorted(pool.chunks_of(T1)) == sorted(mine)


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free", "gc"]), st.integers(0, 1)),
        max_size=60,
    )
)
def test_pool_invariants_under_random_ops(ops):
    """Property: no op sequence can break owner/free-list consistency."""
    pool = make_pool(chunks=5)
    owners = [T1, T2]
    held: dict = {T1: [], T2: []}
    for op, which in ops:
        owner = owners[which]
        if op == "alloc":
            try:
                index = pool.allocate(owner)
                pool.store(index, owner, b"data")
                held[owner].append(index)
            except OutOfSpongeMemory:
                assert pool.free_chunks == 0
        elif op == "free" and held[owner]:
            pool.free(held[owner].pop(), owner)
        elif op == "gc":
            dead = owners[1 - which]
            pool.collect(lambda o: o != dead)
            held[dead] = []
        pool.check_invariants()
    assert pool.used_chunks == len(held[T1]) + len(held[T2])
