"""Redundancy inside the SpongeFile write/read pipeline.

End-to-end over the in-process MiniCluster: group sealing, parity
handle routing, raw-domain handle restamping, anti-affinity placement,
degraded reads (single loss reconstructs, double loss fails
classified), and the delete path freeing parity members.
"""

import hashlib

import pytest

from repro.backends.memory_backends import LocalPoolStore, ServerStore
from repro.errors import ChunkLostError, ConfigError
from repro.sponge.allocator import AllocationChain
from repro.sponge.blob import Payload
from repro.sponge.chunk import ChunkLocation, TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.redundancy import RedundancyCodec
from repro.sponge.spongefile import SpongeFile
from repro.sponge.store import run_sync

from .conftest import MiniCluster

CHUNK = 8192
OWNER = TaskId("h0", "task-0")


def payload(nbytes: int, tag: bytes = b"x") -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        out.extend(hashlib.sha256(tag + counter.to_bytes(4, "big")).digest())
        counter += 1
    return bytes(out[:nbytes])


def xor_config(k=3, **kwargs) -> SpongeConfig:
    return SpongeConfig(chunk_size=CHUNK, redundancy="xor", redundancy_k=k,
                        **kwargs)


def make_cluster(config, hosts=("h0", "h1", "h2", "h3"), pool_chunks=64):
    return MiniCluster(list(hosts), pool_chunks=pool_chunks, config=config)


def write_file(cluster, config, data, **kwargs):
    sponge_file = SpongeFile(OWNER, cluster.chain("h0"), config=config,
                             **kwargs)
    sponge_file.write_all(data)
    sponge_file.close_sync()
    return sponge_file


def read_back(sponge_file) -> bytes:
    reader = sponge_file.open_reader()
    parts = []
    while True:
        chunk = run_sync(reader.next_chunk())
        if chunk is None:
            break
        parts.append(bytes(chunk))
    return b"".join(parts)


def lose(cluster, handle) -> None:
    run_sync(cluster.chain("h0").store_for(handle).free_chunk(handle))


class TestWritePath:
    def test_round_trip_and_group_accounting(self):
        config = xor_config(k=3)
        cluster = make_cluster(config)
        data = payload(CHUNK * 7 + 1234)
        sponge_file = write_file(cluster, config, data)
        # 7 full-budget chunks' worth of data cuts into 8 stored data
        # members (the budget is slightly under chunk_size), in groups
        # of 3 -> 3 groups, each with one parity member.
        assert len(sponge_file.handles) == 8
        assert sorted(sponge_file.parity_handles) == [0, 1, 2]
        assert sponge_file.stats.parity_chunks == 3
        # parity never pollutes the logical chunk counts
        assert sponge_file.stats.total_chunks == 8
        assert read_back(sponge_file) == data

    def test_handles_restamped_to_raw_sizes(self):
        config = xor_config(k=2)
        cluster = make_cluster(config)
        data = payload(CHUNK * 3 + 17)
        sponge_file = write_file(cluster, config, data)
        # Handles carry raw (pre-framing) sizes; their sum is the file.
        assert sum(h.nbytes for h in sponge_file.handles) == len(data)
        # Parity handles keep stored sizes (they are real stored bytes,
        # invisible to the file's logical byte accounting).
        for parity in sponge_file.parity_handles.values():
            assert parity.nbytes > 0

    def test_anti_affinity_spreads_each_group(self):
        config = xor_config(k=3)
        cluster = make_cluster(config)  # local + 3 remote hosts = 4 domains
        sponge_file = write_file(cluster, config, payload(CHUNK * 6))
        red = sponge_file._red
        for gid, parity in sponge_file.parity_handles.items():
            members = [
                handle for index, handle in enumerate(sponge_file.handles)
                if index // red.k == gid
            ]
            members.append(parity)
            domains = {m.store_id for m in members}
            assert len(domains) == len(members), (
                f"group {gid} doubled up: {[m.store_id for m in members]}"
            )

    def test_batch_depth_does_not_regroup_members(self):
        # batch_depth batches whole chunks into one RPC — which would
        # put a whole group on one server.  Redundancy must bypass it.
        config = xor_config(k=2, batch_depth=4, async_write_depth=4)
        cluster = make_cluster(config)
        data = payload(CHUNK * 4)
        sponge_file = write_file(cluster, config, data)
        assert read_back(sponge_file) == data
        red = sponge_file._red
        for gid, parity in sponge_file.parity_handles.items():
            members = [
                handle for index, handle in enumerate(sponge_file.handles)
                if index // red.k == gid
            ] + [parity]
            assert len({m.store_id for m in members}) == len(members)

    def test_payload_mode_disables_redundancy(self):
        config = xor_config(k=2)
        cluster = make_cluster(config)
        sponge_file = SpongeFile(OWNER, cluster.chain("h0"), config=config)
        run_sync(sponge_file.write(Payload.of([b"r"] * 3, CHUNK * 3)))
        run_sync(sponge_file.close())
        assert sponge_file._red is None
        assert sponge_file.parity_handles == {}
        assert sum(h.nbytes for h in sponge_file.handles) == CHUNK * 3

    def test_off_path_stores_raw_chunks(self):
        # redundancy="off" must be byte-identical to the pre-redundancy
        # pipeline: full-chunk_size stored chunks, no SFR framing.
        config = SpongeConfig(chunk_size=CHUNK)
        cluster = make_cluster(config, pool_chunks=8)
        data = payload(CHUNK * 2 + 100)
        sponge_file = write_file(cluster, config, data)
        stored = b"".join(
            bytes(run_sync(cluster.chain("h0").store_for(h).read_chunk(h)))
            for h in sponge_file.handles
        )
        assert stored == data
        assert len(sponge_file.handles) == 3
        assert sponge_file.handles[0].nbytes == CHUNK

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SpongeConfig(redundancy="raid6")
        with pytest.raises(ConfigError):
            SpongeConfig(redundancy="xor", redundancy_k=0)
        with pytest.raises(ConfigError):
            SpongeConfig(chunk_size=2048, redundancy="xor")
        assert RedundancyCodec.for_config(SpongeConfig()) is None
        assert RedundancyCodec.for_config(
            SpongeConfig(redundancy="mirror")).k == 1


class TestDegradedReads:
    def test_any_single_data_member_loss_reconstructs(self):
        config = xor_config(k=3)
        data = payload(CHUNK * 5, b"s")
        for victim_index in range(7):  # 5 chunks -> 6 members at k=3? walk all
            cluster = make_cluster(config)
            sponge_file = write_file(cluster, config, data)
            if victim_index >= len(sponge_file.handles):
                break
            lose(cluster, sponge_file.handles[victim_index])
            assert read_back(sponge_file) == data
            assert sponge_file._red.stats.reconstructions == 1

    def test_parity_loss_is_free(self):
        config = xor_config(k=2)
        cluster = make_cluster(config)
        data = payload(CHUNK * 4, b"p")
        sponge_file = write_file(cluster, config, data)
        lose(cluster, sponge_file.parity_handles[0])
        assert read_back(sponge_file) == data
        assert sponge_file._red.stats.reconstructions == 0

    def test_double_loss_in_one_group_fails_classified(self):
        config = xor_config(k=2)
        cluster = make_cluster(config)
        data = payload(CHUNK * 4, b"d")
        sponge_file = write_file(cluster, config, data)
        lose(cluster, sponge_file.handles[0])
        lose(cluster, sponge_file.handles[1])
        with pytest.raises(ChunkLostError):
            read_back(sponge_file)
        assert sponge_file._red.stats.reconstruct_failures >= 1

    def test_losses_in_different_groups_all_reconstruct(self):
        config = xor_config(k=2)
        cluster = make_cluster(config)
        data = payload(CHUNK * 6, b"m")
        sponge_file = write_file(cluster, config, data)
        red = sponge_file._red
        lose(cluster, sponge_file.handles[0])   # group 0
        lose(cluster, sponge_file.handles[3])   # group 1
        assert read_back(sponge_file) == data
        assert red.stats.reconstructions == 2

    def test_mirror_single_loss(self):
        config = SpongeConfig(chunk_size=CHUNK, redundancy="mirror")
        cluster = make_cluster(config)
        data = payload(CHUNK * 3, b"mi")
        sponge_file = write_file(cluster, config, data)
        assert len(sponge_file.parity_handles) == len(sponge_file.handles)
        lose(cluster, sponge_file.handles[1])
        assert read_back(sponge_file) == data

    def test_compression_composes_with_redundancy(self):
        config = xor_config(k=2, compression="always")
        cluster = make_cluster(config)
        data = (b"%05d\trecord-value\n" % 7) * 4000
        sponge_file = write_file(cluster, config, data)
        assert read_back(sponge_file) == data
        lose(cluster, sponge_file.handles[0])
        assert read_back(sponge_file) == data
        assert sponge_file._red.stats.reconstructions == 1


class TestDeleteAndPlacement:
    def test_delete_frees_parity_members_too(self):
        config = xor_config(k=2)
        cluster = make_cluster(config, pool_chunks=32)
        sponge_file = write_file(cluster, config, payload(CHUNK * 6))
        assert sponge_file.parity_handles
        sponge_file.delete_sync()
        for host, pool in cluster.pools.items():
            assert pool.free_bytes == 32 * CHUNK, f"{host} leaked chunks"

    def test_degraded_placement_counted_when_cluster_too_small(self):
        # Memory-only chain (no disk/DFS), 2 hosts, k=2 -> 3 members
        # need 3 domains but only local + 1 remote exist: the third
        # doubles up, loudly.
        config = xor_config(k=2)
        cluster = make_cluster(config, hosts=("h0", "h1"))
        chain = AllocationChain(
            local_store=LocalPoolStore(cluster.pools["h0"],
                                       store_id="h0/pool"),
            tracker=cluster.tracker,
            remote_store_factory=lambda info: ServerStore(
                cluster.servers[info.host or info.server_id.split("@", 1)[1]]
            ),
            disk_store=None,
            dfs_store=None,
            host="h0",
            config=config,
        )
        data = payload(CHUNK * 2, b"g")
        sponge_file = SpongeFile(OWNER, chain, config=config)
        sponge_file.write_all(data)
        sponge_file.close_sync()
        assert chain.stats.redundancy_degraded > 0
        assert read_back(sponge_file) == data

    def test_disk_tier_absorbs_overflow_without_degrading(self):
        # With disk/DFS present, anti-affinity overflow falls through
        # the chain instead of doubling up on a used server.
        config = xor_config(k=3)
        cluster = make_cluster(config, hosts=("h0", "h1"))
        data = payload(CHUNK * 3, b"o")
        sponge_file = write_file(cluster, config, data)
        chain = cluster.chain("h0")
        assert chain.stats.redundancy_degraded == 0
        locations = [h.location for h in sponge_file.handles]
        locations.extend(
            h.location for h in sponge_file.parity_handles.values()
        )
        assert ChunkLocation.LOCAL_DISK in locations \
            or ChunkLocation.DFS in locations
        assert read_back(sponge_file) == data
