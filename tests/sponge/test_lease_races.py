"""LeaseTable: ``expire`` vs ``prune`` must never double-reclaim.

Both are reclamation paths for the same entries — ``expire`` takes
back leases whose deadline passed, ``prune`` drops leases whose chunk
the dead-owner pool sweep already freed.  Each lease must be handed to
exactly one of them (or to the owner via consume/release), because the
caller frees the underlying chunk for every index it gets back.
"""

import threading

from repro.sponge.chunk import TaskId
from repro.sponge.gc import LeaseTable


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


OWNER = TaskId("h0", "task-1")


class TestDeterministicInterleavings:
    def test_expire_first_leaves_nothing_for_prune(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        table.grant([1, 2, 3], OWNER, ttl=10.0)
        clock.now = 11.0
        expired = table.expire()
        assert sorted(i for i, _o in expired) == [1, 2, 3]
        # The pool sweep runs next and finds the chunks already freed:
        # prune must not report them a second time.
        assert table.prune(lambda i, owner: False) == 0
        assert table.outstanding == 0

    def test_prune_first_leaves_nothing_for_expire(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        table.grant([1, 2, 3], OWNER, ttl=10.0)
        clock.now = 11.0
        # Dead-owner collection freed the chunks before the lease sweep.
        assert table.prune(lambda i, owner: False) == 3
        assert table.expire() == []
        assert table.outstanding == 0

    def test_partial_prune_then_expire_splits_cleanly(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        table.grant([1, 2, 3, 4], OWNER, ttl=10.0)
        clock.now = 11.0
        # The pool still holds even-numbered chunks for the owner.
        assert table.prune(lambda i, owner: i % 2 == 0) == 2
        expired = sorted(i for i, _o in table.expire())
        assert expired == [2, 4]
        assert table.outstanding == 0

    def test_consume_beats_both_reclaimers(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        table.grant([7], OWNER, ttl=10.0)
        assert table.consume(7, OWNER)
        clock.now = 11.0
        assert table.expire() == []
        assert table.prune(lambda i, owner: False) == 0

    def test_expired_lease_cannot_be_consumed(self):
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        table.grant([7], OWNER, ttl=10.0)
        clock.now = 11.0
        assert table.expire() == [(7, OWNER)]
        assert not table.consume(7, OWNER)


class TestThreadedRace:
    def test_each_index_reclaimed_by_exactly_one_path(self):
        """Hammer expire and prune concurrently over many rounds; the
        union of what they return must be an exact partition of the
        granted indices — no index lost, none reclaimed twice."""
        clock = FakeClock()
        table = LeaseTable(clock=clock)
        rounds, per_round = 50, 40
        expired_indices: list[int] = []
        pruned_total = [0]
        start = threading.Barrier(2)

        # prune()'s callback runs under the table lock, so it must not
        # re-enter the table; a plain set (one writer) stands in for
        # "does the pool still hold this chunk".
        freed_by_pool: set[int] = set()

        def expirer():
            start.wait()
            for _ in range(rounds * 4):
                expired_indices.extend(i for i, _o in table.expire())

        def pruner():
            start.wait()
            for _ in range(rounds * 4):
                pruned_total[0] += table.prune(
                    lambda i, owner: i not in freed_by_pool
                )

        granted = 0
        for round_no in range(rounds):
            base = round_no * per_round
            indices = list(range(base, base + per_round))
            table.grant(indices, OWNER, ttl=float(round_no + 1))
            granted += per_round
            # Half of each round's chunks get freed by the pool sweep.
            freed_by_pool.update(indices[: per_round // 2])
        clock.now = rounds + 1.0  # everything is now past deadline
        threads = [threading.Thread(target=expirer),
                   threading.Thread(target=pruner)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert table.outstanding == 0
        assert len(expired_indices) == len(set(expired_indices))
        assert len(expired_indices) + pruned_total[0] == granted
