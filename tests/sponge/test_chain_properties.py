"""Property tests of the allocation chain under randomized conditions.

Invariants, regardless of pool sizes, payload shapes, or which servers
fill up behind the tracker's back:

* every written byte reads back, in order;
* chunk placements respect the preference order at each allocation
  instant (local pool never refused while it has space);
* deletion returns every pool to its starting occupancy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.memory_backends import (
    LocalPoolStore,
    MemoryDfsStore,
    MemoryDiskStore,
    ServerStore,
)
from repro.sponge.allocator import AllocationChain
from repro.sponge.chunk import ChunkLocation, TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.gc import wire_peers
from repro.sponge.pool import SpongePool
from repro.sponge.server import SpongeServer
from repro.sponge.spongefile import SpongeFile
from repro.sponge.tracker import MemoryTracker

CHUNK = 512


def build_cluster(local_chunks, remote_chunk_counts, disk_capacity):
    config = SpongeConfig(chunk_size=CHUNK)
    tracker = MemoryTracker()
    servers = {}
    for index, chunks in enumerate(remote_chunk_counts):
        host = f"peer{index}"
        pool = SpongePool(max(1, chunks) * CHUNK, CHUNK)
        servers[host] = SpongeServer(f"sponge@{host}", host=host, pool=pool)
        tracker.register(servers[host])
    wire_peers(list(servers.values()))
    tracker.poll_once()
    local_pool = SpongePool(max(1, local_chunks) * CHUNK, CHUNK)
    chain = AllocationChain(
        local_store=LocalPoolStore(local_pool, "local/pool"),
        tracker=tracker,
        remote_store_factory=lambda info: ServerStore(servers[info.host]),
        disk_store=MemoryDiskStore(capacity=disk_capacity),
        dfs_store=MemoryDfsStore(),
        host="local",
        config=config,
    )
    return config, chain, local_pool, servers


@settings(max_examples=40, deadline=None)
@given(
    local_chunks=st.integers(1, 6),
    remote_chunk_counts=st.lists(st.integers(0, 6), min_size=0, max_size=3),
    disk_chunks=st.integers(0, 8),
    writes=st.lists(st.integers(1, 4 * CHUNK), min_size=1, max_size=10),
    fill_remote_after_poll=st.booleans(),
)
def test_chain_invariants(local_chunks, remote_chunk_counts, disk_chunks,
                          writes, fill_remote_after_poll):
    config, chain, local_pool, servers = build_cluster(
        local_chunks, remote_chunk_counts, disk_chunks * CHUNK
    )
    if fill_remote_after_poll and servers:
        # Make some tracker entries stale.
        victim = next(iter(servers.values()))
        hog = TaskId(victim.host, "hog")
        while victim.pool.free_chunks:
            victim.pool.store(victim.pool.allocate(hog), hog, b"")

    owner = TaskId("local", "prop")
    spongefile = SpongeFile(owner, chain, config)
    payload = b"".join(
        bytes([i % 251]) * size for i, size in enumerate(writes)
    )
    for i, size in enumerate(writes):
        spongefile.write_all(bytes([i % 251]) * size)
    spongefile.close_sync()

    # 1) content integrity
    assert spongefile.read_all() == payload

    # 2) preference order: if any chunk went remote/disk, the local
    # pool must have been full at some point (it never lies idle).
    locations = [h.location for h in spongefile.handles]
    if any(loc is not ChunkLocation.LOCAL_MEMORY for loc in locations):
        local_count = sum(
            1 for loc in locations if loc is ChunkLocation.LOCAL_MEMORY
        )
        assert local_count == min(local_chunks, len(locations))

    # 3) cleanup restores every pool
    spongefile.delete_sync()
    assert local_pool.used_chunks == 0
    for server in servers.values():
        hogged = sum(
            1 for _i, o in server.pool if o is not None and o.task == "hog"
        )
        assert server.pool.used_chunks == hogged


@settings(max_examples=20, deadline=None)
@given(
    file_count=st.integers(2, 5),
    chunks_each=st.integers(1, 5),
)
def test_interleaved_files_do_not_cross_contaminate(file_count, chunks_each):
    config, chain, local_pool, servers = build_cluster(
        local_chunks=4, remote_chunk_counts=[6, 6], disk_capacity=None
    )
    files = []
    for index in range(file_count):
        owner = TaskId("local", f"task{index}")
        spongefile = SpongeFile(owner, chain, config, name=f"f{index}")
        files.append((index, spongefile))
    # Interleave writes across all files.
    for round_index in range(chunks_each):
        for index, spongefile in files:
            spongefile.write_all(bytes([index + 1]) * CHUNK)
    for index, spongefile in files:
        spongefile.close_sync()
    for index, spongefile in files:
        data = spongefile.read_all()
        assert data == bytes([index + 1]) * (CHUNK * chunks_each)
        spongefile.delete_sync()
    assert local_pool.used_chunks == 0
