"""Memory tracker: polling, staleness, filtering."""

from repro.sponge.chunk import TaskId
from repro.sponge.pool import SpongePool
from repro.sponge.server import SpongeServer
from repro.sponge.tracker import MemoryTracker

CHUNK = 1024


def make_server(host, chunks=4, rack="rack0"):
    pool = SpongePool(chunks * CHUNK, CHUNK)
    return SpongeServer(f"sponge@{host}", host=host, pool=pool, rack=rack)


def test_free_list_sorted_by_free_space():
    tracker = MemoryTracker()
    small = make_server("small", chunks=1)
    big = make_server("big", chunks=8)
    tracker.register(small)
    tracker.register(big)
    tracker.poll_once()
    infos = tracker.free_list()
    assert [i.host for i in infos] == ["big", "small"]


def test_full_servers_excluded():
    tracker = MemoryTracker()
    server = make_server("h0", chunks=1)
    owner = TaskId("h0", "t")
    server.pool.store(server.pool.allocate(owner), owner, b"x")
    tracker.register(server)
    tracker.poll_once()
    assert tracker.free_list() == []


def test_snapshot_is_stale_until_next_poll():
    tracker = MemoryTracker()
    server = make_server("h0", chunks=2)
    tracker.register(server)
    tracker.poll_once()
    owner = TaskId("h0", "t")
    server.pool.store(server.pool.allocate(owner), owner, b"x")
    server.pool.store(server.pool.allocate(owner), owner, b"x")
    # Stale: the tracker still believes h0 has space.
    assert [i.host for i in tracker.free_list()] == ["h0"]
    tracker.poll_once()
    assert tracker.free_list() == []


def test_rack_and_host_filters():
    tracker = MemoryTracker()
    tracker.register(make_server("a", rack="rack0"))
    tracker.register(make_server("b", rack="rack1"))
    tracker.register(make_server("c", rack="rack0"))
    tracker.poll_once()
    hosts = {i.host for i in tracker.free_list(rack="rack0")}
    assert hosts == {"a", "c"}
    hosts = {i.host for i in tracker.free_list(rack="rack0", exclude_hosts=["a"])}
    assert hosts == {"c"}


def test_unreachable_server_dropped_from_snapshot():
    class BrokenServer:
        server_id = "sponge@broken"
        host = "broken"
        rack = "rack0"

        def free_bytes(self):
            raise ConnectionError("down")

    tracker = MemoryTracker()
    tracker.register(make_server("ok"))
    tracker._servers["sponge@broken"] = BrokenServer()  # simulate a dead node
    tracker.poll_once()
    assert {i.host for i in tracker.free_list()} == {"ok"}


def test_deregister_removes_server():
    tracker = MemoryTracker()
    server = make_server("gone")
    tracker.register(server)
    tracker.poll_once()
    tracker.deregister(server.server_id)
    assert tracker.free_list() == []


def test_stats_count_polls_and_queries():
    tracker = MemoryTracker()
    tracker.register(make_server("h0"))
    tracker.poll_once()
    tracker.free_list()
    tracker.free_list()
    assert tracker.stats.polls == 1
    assert tracker.stats.queries == 2
