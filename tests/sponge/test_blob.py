import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SpongeError
from repro.sponge.blob import Payload, blob_concat, blob_size, blob_take


class TestBytesBlobs:
    def test_size(self):
        assert blob_size(b"abc") == 3
        assert blob_size(bytearray(5)) == 5
        assert blob_size(memoryview(b"xy")) == 2

    def test_concat(self):
        assert blob_concat([b"ab", b"cd", b"e"]) == b"abcde"
        assert blob_concat([]) == b""
        assert blob_concat([b"solo"]) == b"solo"

    def test_take_exact(self):
        head, rest = blob_take(b"abcdef", 4)
        assert head == b"abcd"
        assert rest == b"ef"

    def test_take_whole_when_fits(self):
        head, rest = blob_take(b"ab", 10)
        assert head == b"ab"
        assert rest is None

    @given(st.binary(max_size=200), st.integers(min_value=1, max_value=64))
    def test_take_preserves_content(self, data, size):
        head, rest = blob_take(data, size)
        reassembled = head + (rest or b"")
        assert reassembled == data
        assert len(head) <= max(size, len(data) if rest is None else size)


class TestPayloadBlobs:
    def test_size_is_logical(self):
        payload = Payload.of([1, 2, 3], nbytes=3_000_000)
        assert blob_size(payload) == 3_000_000
        assert len(payload) == 3

    def test_concat_merges_records_and_sizes(self):
        merged = blob_concat([Payload.of([1], 10), Payload.of([2, 3], 20)])
        assert merged.records == (1, 2, 3)
        assert merged.nbytes == 30

    def test_mixing_kinds_rejected(self):
        with pytest.raises(SpongeError):
            blob_concat([Payload.of([1], 10), b"raw"])

    def test_take_cuts_on_record_boundary_under_size(self):
        payload = Payload.of(list(range(10)), nbytes=100)  # 10 bytes/record
        head, rest = blob_take(payload, 35)
        assert len(head.records) == 3
        assert head.nbytes == 30
        assert rest.nbytes == 70
        assert head.records + rest.records == payload.records

    def test_take_oversize_single_record_emitted_alone(self):
        payload = Payload.of(["big", "next"], nbytes=200)  # 100 bytes each
        head, rest = blob_take(payload, 50)
        assert head.records == ("big",)
        assert rest.records == ("next",)

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=1, max_value=500),
    )
    def test_take_conserves_bytes_and_records(self, nrecords, nbytes, size):
        payload = Payload.of(list(range(nrecords)), nbytes)
        head, rest = blob_take(payload, size)
        if rest is None:
            assert head is payload
        else:
            assert head.records + rest.records == payload.records
            assert head.nbytes + rest.nbytes == payload.nbytes
            assert len(head.records) >= 1

    def test_non_blob_rejected(self):
        with pytest.raises(SpongeError):
            blob_size(42)
        with pytest.raises(SpongeError):
            blob_concat([42, 43])
