"""The adaptive parallel compression stage of the spill pipeline.

``SpongeConfig(compression=...)`` promotes compression from a store
wrapper to a first-class pipeline stage: the write buffer is cut into
sub-chunk units, encoded into self-describing frames, packed into
full-size stored chunks, and decoded transparently on read.  These
tests run the whole SpongeFile lifecycle over in-process backends and
check the two accounting domains stay straight: *stored* sizes drive
placement, *raw* sizes end up on the handles.
"""

import os

import pytest

from repro import obs
from repro.backends.memory_backends import (
    LocalPoolStore,
    MemoryDfsStore,
    MemoryDiskStore,
)
from repro.errors import SpongeError
from repro.runtime.executor import ThreadExecutor
from repro.sponge.allocator import AllocationChain
from repro.sponge.blob import FrameBlob, Payload, blob_concat, blob_size
from repro.sponge.chunk import ChunkLocation, TaskId
from repro.sponge.compression import FRAME_OVERHEAD, SUBCHUNKS, SpillCodec
from repro.sponge.config import SpongeConfig
from repro.sponge.pool import SpongePool
from repro.sponge.spongefile import SpongeFile

OWNER = TaskId("h0", "pipeline")
CHUNK = 64 * 1024

TEXT = (b"%08d\tkey-%04d\tvalue-%06d\n" % (7, 42, 90210)) * 40_000  # ~1 MB
RANDOM = os.urandom(CHUNK * 6)


def make_chain(config, pool_chunks=4, disk=None):
    pool = SpongePool(pool_chunks * config.chunk_size, config.chunk_size)
    chain = AllocationChain(
        LocalPoolStore(pool),
        None,
        None,
        disk if disk is not None else MemoryDiskStore(),
        MemoryDfsStore(),
        config=config,
    )
    return pool, chain


def write_and_check(config, data, **file_kwargs):
    pool, chain = make_chain(config)
    sf = SpongeFile(OWNER, chain, config, **file_kwargs)
    sf.write_all(data)
    sf.close_sync()
    assert bytes(sf.read_all()) == data
    assert sum(h.nbytes for h in sf.handles) == len(data)
    assert sf.size == len(data)
    sf.delete_sync()
    assert pool.free_chunks == 4  # nothing leaked
    return sf


class TestModes:
    @pytest.mark.parametrize("mode", ["off", "adaptive", "always"])
    @pytest.mark.parametrize("payload", [TEXT[:300_000], RANDOM[:300_000],
                                         b"x", b""])
    def test_roundtrip_and_raw_accounting(self, mode, payload):
        config = SpongeConfig(chunk_size=CHUNK, compression=mode)
        write_and_check(config, payload)

    def test_compressible_data_multiplies_capacity(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="adaptive")
        baseline = SpongeConfig(chunk_size=CHUNK, compression="off")
        _, chain_c = make_chain(config, pool_chunks=64)
        _, chain_o = make_chain(baseline, pool_chunks=64)
        compressed = SpongeFile(OWNER, chain_c, config)
        plain = SpongeFile(OWNER, chain_o, baseline)
        for sf in (compressed, plain):
            sf.write_all(TEXT)
            sf.close_sync()
        # Same raw bytes, >= 2x fewer stored chunks.
        assert plain.chunk_count() >= 2 * compressed.chunk_count()
        assert bytes(compressed.read_all()) == TEXT

    def test_adaptive_passes_incompressible_through(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="adaptive")
        sf = write_and_check(config, RANDOM)
        codec = sf._codec
        assert codec.stats.passthrough_chunks > 0
        # Passthrough frames tile stored chunks exactly: no extra chunk
        # versus the uncompressed path.
        assert sf.stats.total_chunks == len(RANDOM) // CHUNK + 1

    def test_adaptive_reprobes_on_phase_change(self):
        config = SpongeConfig(
            chunk_size=CHUNK, compression="adaptive",
            compression_reprobe_chunks=4,
        )
        pool, chain = make_chain(config, pool_chunks=64)
        sf = SpongeFile(OWNER, chain, config)
        data = RANDOM[:CHUNK * 2] + TEXT[:CHUNK * 8]
        sf.write_all(data)
        sf.close_sync()
        codec = sf._codec
        # The random prefix forced a raw verdict; the re-probe must
        # have flipped it for the text phase.
        assert codec.stats.probes >= 2
        assert codec.stats.passthrough_chunks < codec.stats.chunks
        assert codec.stats.stored_bytes < codec.stats.raw_bytes
        assert bytes(sf.read_all()) == data

    def test_always_mode_compresses_every_unit(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="always")
        sf = write_and_check(config, TEXT[:400_000])
        assert sf._codec.stats.probes == 0
        assert sf._codec.stats.ratio > 2.0


class TestBlobInteraction:
    def test_payload_first_write_disables_codec(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="adaptive")
        _, chain = make_chain(config)
        sf = SpongeFile(OWNER, chain, config)
        assert sf._codec is not None
        sf.write_all(Payload.of([b"r"] * 10, CHUNK // 2))
        assert sf._codec is None  # simulated payloads carry no real bytes
        sf.close_sync()
        sf.delete_sync()

    def test_mixing_payload_into_bytes_file_raises(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="adaptive")
        _, chain = make_chain(config)
        sf = SpongeFile(OWNER, chain, config)
        sf.write_all(b"real bytes " * 100)
        with pytest.raises(SpongeError):
            sf.write_all(Payload.of([b"r"], 64))

    def test_frameblob_sizes_and_concat(self):
        codec = SpillCodec(mode="always")
        from repro.sponge.compression import pack_frames

        one = pack_frames([codec.encode(b"a" * 1000)])
        two = pack_frames([codec.encode(b"b" * 1000)])
        assert isinstance(one, FrameBlob)
        assert blob_size(one) == len(one)
        assert one.raw_len == 1000
        joined = blob_concat([one, two])
        assert isinstance(joined, FrameBlob)
        assert len(joined) == len(one) + len(two)
        assert joined.raw_len == 2000
        assert codec.decode(joined) == b"a" * 1000 + b"b" * 1000


class TestTiers:
    def test_disk_append_coalescing_of_packs(self):
        # One pool chunk: everything past chunk 1 goes to disk, where
        # depth-1 writes coalesce packs by frame-wise append.
        config = SpongeConfig(chunk_size=CHUNK, compression="always")
        disk = MemoryDiskStore()
        pool = SpongePool(CHUNK, CHUNK)
        chain = AllocationChain(LocalPoolStore(pool), None, None, disk,
                                None, config=config)
        sf = SpongeFile(OWNER, chain, config)
        sf.write_all(RANDOM[:CHUNK * 5])  # incompressible: many packs
        sf.close_sync()
        assert sf.stats.disk_appends > 0
        assert sum(h.nbytes for h in sf.handles) == CHUNK * 5
        assert bytes(sf.read_all()) == RANDOM[:CHUNK * 5]
        sf.delete_sync()

    @pytest.mark.parametrize("batch_depth", [2, 4])
    def test_batched_allocation_restamps_in_order(self, batch_depth):
        config = SpongeConfig(
            chunk_size=CHUNK, compression="adaptive",
            batch_depth=batch_depth, async_write_depth=2,
        )
        data = RANDOM[:CHUNK * 3] + TEXT[:CHUNK * 3] + RANDOM[CHUNK * 3:]
        write_and_check(config, data)

    def test_threaded_executor_pipeline(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="adaptive",
                              async_write_depth=2, prefetch_depth=2)
        pool, chain = make_chain(config, pool_chunks=8)
        with ThreadExecutor(max_workers=4, name="test-codec") as executor:
            sf = SpongeFile(OWNER, chain, config, executor=executor)
            data = TEXT[:CHUNK * 4] + RANDOM[:CHUNK * 4]
            for offset in range(0, len(data), 10_000):
                sf.write_all(data[offset:offset + 10_000])
            sf.close_sync()
            assert bytes(sf.read_all()) == data
            assert sum(h.nbytes for h in sf.handles) == len(data)
            sf.delete_sync()

    def test_byte_mode_read_over_compressed_file(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="always")
        _, chain = make_chain(config, pool_chunks=16)
        sf = SpongeFile(OWNER, chain, config)
        sf.write_all(TEXT[:200_000])
        sf.close_sync()
        reader = sf.open_reader()
        from repro.sponge.store import run_sync

        out = bytearray()
        while True:
            piece = run_sync(reader.read(7777))
            if not piece:
                break
            out.extend(piece)
        assert bytes(out) == TEXT[:200_000]

    def test_delete_mid_write_drains_encodes(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="always")
        pool, chain = make_chain(config)
        sf = SpongeFile(OWNER, chain, config)
        sf.write_all(TEXT[:CHUNK * 3])
        sf.delete_sync()  # no close: in-flight frames must be dropped
        assert pool.free_chunks == 4


class TestUnitGeometry:
    def test_units_tile_chunks_exactly(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="adaptive")
        _, chain = make_chain(config)
        sf = SpongeFile(OWNER, chain, config)
        assert sf._cut == CHUNK // SUBCHUNKS - FRAME_OVERHEAD
        assert SUBCHUNKS * (sf._cut + FRAME_OVERHEAD) == CHUNK

    def test_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SpongeConfig(compression="sometimes")
        with pytest.raises(ConfigError):
            SpongeConfig(compression="always", compression_level=0)
        with pytest.raises(ConfigError):
            SpongeConfig(compression="always", chunk_size=1024)
        with pytest.raises(ConfigError):
            SpongeConfig(compression_min_ratio=0.9)


class TestObservability:
    def test_codec_counters_reach_the_registry(self):
        registry = obs.install(source="test-codec")
        try:
            config = SpongeConfig(chunk_size=CHUNK, compression="adaptive")
            write_and_check(config, TEXT[:CHUNK * 4] + RANDOM[:CHUNK * 2])
            snapshot = registry.snapshot()
            assert snapshot.counters["compress.chunks"] > 0
            assert snapshot.counters["compress.raw_bytes"] > 0
            assert snapshot.counters["compress.stored_bytes"] > 0
            assert snapshot.counters["compress.probes"] > 0
            assert snapshot.counters["decompress.cpu_us"] >= 0
            assert any(name.startswith("compress.ratio_pct")
                       for name in snapshot.histograms)
        finally:
            obs.uninstall()

    def test_dump_compression_summary(self):
        from repro.obs.dump import compression_summary

        registry = obs.install(source="test-summary")
        try:
            config = SpongeConfig(chunk_size=CHUNK, compression="always")
            write_and_check(config, TEXT[:CHUNK * 2])
            line = compression_summary(registry.snapshot())
            assert line is not None and "ratio" in line
            from repro.obs.metrics import MetricsSnapshot

            assert compression_summary(MetricsSnapshot()) is None
        finally:
            obs.uninstall()
