"""The parallel read/decode pipeline.

``config.read_parallelism > 1`` makes the reader split fetched chunks
into their frames and decompress them as independent executor ops,
keep several batched-read RPCs in flight (read striping), and rebuild
lost redundancy members from concurrently-fetched siblings.  None of
that may be observable in the results: chunks arrive strictly in
order, byte-exact, and a decode failure surfaces classified at exactly
the failing chunk's position.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.memory_backends import (
    LocalPoolStore,
    MemoryDfsStore,
    MemoryDiskStore,
)
from repro.errors import CorruptChunkError
from repro.faults import FaultPlan, hooks
from repro.mapreduce.fanin import FanInReader, sponge_files
from repro.runtime.executor import ThreadExecutor
from repro.sponge.allocator import AllocationChain
from repro.sponge.blob import Payload, blob_size
from repro.sponge.chunk import TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.pool import SpongePool
from repro.sponge.redundancy import RedundancyCodec, XorReconstruction
from repro.sponge.spongefile import SpongeFile
from repro.sponge.store import run_sync

OWNER = TaskId("h0", "read-pipeline")
CHUNK = 8 * 1024


@pytest.fixture(autouse=True)
def disarm():
    yield
    hooks.disarm()


@pytest.fixture(scope="module")
def executor():
    pool = ThreadExecutor(max_workers=4, name="test-read-pipeline")
    yield pool
    pool.close()


def make_chain(config, pool_chunks=64):
    pool = SpongePool(pool_chunks * config.chunk_size, config.chunk_size)
    return AllocationChain(LocalPoolStore(pool), None, None,
                           MemoryDiskStore(), MemoryDfsStore(),
                           config=config)


def make_file(config, pool_chunks=64, **kwargs):
    return SpongeFile(OWNER, make_chain(config, pool_chunks), config,
                      **kwargs)


def mixed_payload(segments):
    """Compressible text runs interleaved with incompressible noise."""
    parts = []
    for index, (compressible, size) in enumerate(segments):
        if compressible:
            parts.append((b"%06d\tkey\tvalue\n" % index) * (size // 16 + 1))
        else:
            parts.append(random.Random(index * 7919 + size).randbytes(size))
    return b"".join(parts)


def written_file(payload, config, executor):
    sf = make_file(config, **({"executor": executor} if executor else {}))
    sf.write_all(payload)
    sf.close_sync()
    return sf


class TestParallelDecodeDelivery:
    @settings(max_examples=25, deadline=None)
    @given(
        segments=st.lists(
            st.tuples(st.booleans(), st.integers(1, 6000)),
            min_size=1, max_size=8,
        ),
        read_parallelism=st.integers(2, 6),
        prefetch_depth=st.integers(1, 4),
        mode=st.sampled_from(["always", "adaptive"]),
    )
    def test_chunks_in_order_and_byte_exact(self, segments, read_parallelism,
                                            prefetch_depth, mode, executor):
        payload = mixed_payload(segments)
        config = SpongeConfig(
            chunk_size=CHUNK, compression=mode,
            read_parallelism=read_parallelism,
            prefetch_depth=prefetch_depth,
        )
        sf = written_file(payload, config, executor)
        reader = sf.open_reader()
        out = bytearray()
        while True:
            chunk = run_sync(reader.next_chunk())
            if chunk is None:
                break
            out.extend(bytes(chunk))
        assert bytes(out) == payload
        sf.delete_sync()

    @settings(max_examples=25, deadline=None)
    @given(
        segments=st.lists(
            st.tuples(st.booleans(), st.integers(1, 5000)),
            min_size=1, max_size=6,
        ),
        read_sizes=st.lists(st.integers(1, 3 * CHUNK), min_size=1,
                            max_size=30),
    )
    def test_read_n_straddles_decoded_chunk_boundaries(self, segments,
                                                       read_sizes, executor):
        # Byte-mode read(n) slices across decoded-chunk boundaries;
        # the fan-out must be invisible to the splice.
        payload = mixed_payload(segments)
        config = SpongeConfig(chunk_size=CHUNK, compression="always",
                              read_parallelism=4, prefetch_depth=2)
        sf = written_file(payload, config, executor)
        reader = sf.open_reader()
        out = bytearray()
        for size in read_sizes:
            out.extend(run_sync(reader.read(size)))
        while True:
            got = run_sync(reader.read(CHUNK))
            if not got:
                break
            out.extend(got)
        assert bytes(out) == payload
        sf.delete_sync()

    def test_serial_and_parallel_paths_agree(self, executor):
        payload = mixed_payload([(True, 20_000), (False, 20_000),
                                 (True, 9_000)])
        for parallelism in (1, 4):
            config = SpongeConfig(chunk_size=CHUNK, compression="always",
                                  read_parallelism=parallelism)
            sf = written_file(payload, config, executor)
            assert bytes(sf.read_all()) == payload
            sf.delete_sync()


class TestMidDecodeFault:
    def test_degrades_to_the_failing_chunk_only(self):
        # prefetch off pins decode order to chunk order, so the fault
        # lands deterministically on chunk 2: earlier chunks must be
        # delivered byte-exact, chunk 2 must fail classified.
        config = SpongeConfig(chunk_size=CHUNK, compression="always",
                              read_parallelism=4, prefetch=False)
        # Incompressible noise keeps ~1 stored chunk per raw chunk, so
        # the file really has several stored chunks to fail between.
        payload = mixed_payload([(False, 4 * CHUNK), (True, 8 * CHUNK)])
        sf = written_file(payload, config, None)
        expected = []
        reader = sf.open_reader()
        while True:
            chunk = run_sync(reader.next_chunk())
            if chunk is None:
                break
            expected.append(bytes(chunk))
        assert len(expected) >= 4

        plan = hooks.arm(FaultPlan().fail_decode(after=2, times=1))
        reader = sf.open_reader()
        for index in range(2):
            assert bytes(run_sync(reader.next_chunk())) == expected[index]
        with pytest.raises(CorruptChunkError):
            run_sync(reader.next_chunk())
        assert len(plan.fired("compress.decode")) == 1

    def test_threaded_fault_stays_classified_and_ordered(self, executor):
        # With prefetch on, which chunk's decode the fault hits is
        # timing-dependent — but every chunk delivered before the
        # error must be byte-exact at its position, and the error
        # must be a classified CorruptChunkError.
        config = SpongeConfig(chunk_size=CHUNK, compression="always",
                              read_parallelism=4, prefetch_depth=3)
        payload = mixed_payload([(False, 3 * CHUNK), (True, 12 * CHUNK),
                                 (False, 3 * CHUNK)])
        sf = written_file(payload, config, executor)
        expected = []
        reader = sf.open_reader()
        while True:
            chunk = run_sync(reader.next_chunk())
            if chunk is None:
                break
            expected.append(bytes(chunk))
        assert len(expected) >= 4

        plan = hooks.arm(FaultPlan().fail_decode(times=1))
        reader = sf.open_reader()
        delivered = 0
        try:
            while True:
                chunk = run_sync(reader.next_chunk())
                if chunk is None:
                    break
                assert bytes(chunk) == expected[delivered]
                delivered += 1
        except CorruptChunkError:
            pass
        assert len(plan.fired("compress.decode")) == 1


class TestXorFoldOrder:
    @settings(max_examples=50, deadline=None)
    @given(
        data=st.data(),
        k=st.integers(2, 5),
        seed=st.integers(0, 2**16),
    )
    def test_fold_is_order_independent(self, data, k, seed):
        rng = random.Random(seed)
        bodies = [rng.randbytes(rng.randint(1, 200)) for _ in range(k)]
        lengths = [len(body) for body in bodies]
        acc = 0
        for body in bodies:
            acc ^= int.from_bytes(body, "little")
        parity = (b"".join(n.to_bytes(4, "big") for n in lengths)
                  + acc.to_bytes(max(lengths), "little"))
        missing = data.draw(st.integers(0, k - 1))
        codec = RedundancyCodec(k)
        siblings = {i: bodies[i] for i in range(k) if i != missing}
        eager = codec.reconstruct(k, siblings, parity, missing)
        assert eager == bodies[missing]

        # Incremental fold, members arriving in any order.
        arrivals = [("parity", parity)] + [
            ("sibling", (i, bodies[i])) for i in range(k) if i != missing
        ]
        order = data.draw(st.permutations(arrivals))
        fold = XorReconstruction(k, missing)
        for kind, item in order:
            if kind == "parity":
                fold.add_parity(item)
            else:
                fold.add_sibling(*item)
        assert fold.finish() == bodies[missing]


class TestConcurrentReconstruction:
    def xor_file(self, executor, k=4):
        config = SpongeConfig(chunk_size=CHUNK, redundancy="xor",
                              redundancy_k=k, read_parallelism=4)
        sf = make_file(config, executor=executor)
        payload = mixed_payload([(False, k * 2 * (CHUNK - 64))])
        sf.write_all(payload)
        sf.close_sync()
        return sf, payload

    def test_lost_primary_rebuilds_byte_exact_on_threads(self, executor):
        sf, payload = self.xor_file(executor)
        hooks.arm(FaultPlan().lose_group_member(role="primary", times=1))
        assert bytes(sf.read_all()) == payload
        assert sf._red.stats.reconstructions == 1
        assert sf._red.stats.reconstruct_failures == 0

    def test_no_deadlock_on_a_one_worker_pool(self):
        # A reconstruction op running *on* the pool's only worker
        # spawns k member reads onto that same pool; steal-or-wait
        # must drive them inline instead of deadlocking.
        tiny = ThreadExecutor(max_workers=1, name="test-read-tiny")
        try:
            sf, payload = self.xor_file(tiny, k=4)
            hooks.arm(FaultPlan().lose_group_member(role="primary", times=2))
            assert bytes(sf.read_all()) == payload
            assert sf._red.stats.reconstruct_failures == 0
        finally:
            tiny.close()


class TestFanInReader:
    def spilled(self, payload, executor, **config_kwargs):
        config = SpongeConfig(chunk_size=CHUNK, **config_kwargs)
        sf = make_file(config, executor=executor)
        sf.write_all(payload)
        sf.close_sync()
        return sf

    def test_chunks_come_back_per_file_in_order(self, executor):
        payloads = [mixed_payload([(True, 3 * CHUNK + i * 1000)])
                    for i in range(3)]
        files = [self.spilled(p, executor, compression="always",
                              read_parallelism=4)
                 for p in payloads]
        chunk_lists = run_sync(FanInReader(files).read_chunks())
        for chunks, payload in zip(chunk_lists, payloads):
            assert b"".join(bytes(c) for c in chunks) == payload
        for sf in files:
            sf.delete_sync()

    def test_record_mode_feeds_the_merge_shape(self, executor):
        files, expected = [], []
        for run in range(3):
            config = SpongeConfig(chunk_size=CHUNK)
            sf = make_file(config, executor=executor)
            records = [("k%03d" % i, "run%d" % run) for i in range(50)]
            run_sync(sf.write(Payload(tuple(records), 16 * len(records))))
            sf.close_sync()
            files.append(sf)
            expected.append(records)
        record_lists = run_sync(FanInReader(files).read_records())
        assert [list(records) for records in record_lists] == expected
        for sf in files:
            sf.delete_sync()

    def test_mixed_runs_fall_back(self):
        class DiskishRun:
            pass

        class SpongishRun:
            spongefile = object()

        assert sponge_files([SpongishRun(), DiskishRun()]) is None
        assert sponge_files([]) == []
