"""Property tests for the spill frame codec.

Three invariants, hypothesis-driven:

* **Round trip**: any byte string survives encode -> pack -> decode at
  every mode and compression level.
* **Truncation**: a pack cut short at *any* interior byte raises
  :class:`CorruptChunkError` — the header CRC, body bounds, or the
  final frame's ``remaining`` count catches it; never silent data loss,
  never a hang.
* **Bit flips**: flipping any header bit, or any bit of a compressed
  (``SFZ1``) pack, raises a classified :class:`SpongeError`.  Raw
  (``SFZ0``) *bodies* are deliberately unchecksummed — passthrough must
  cost nothing over the uncompressed baseline, which carries no
  checksum either — so body flips are only asserted on compressed
  packs, where zlib's adler32 covers them.
"""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptChunkError, SpongeError
from repro.sponge.compression import (
    FRAME_OVERHEAD,
    SpillCodec,
    decode_frames,
    pack_frames,
)


def roundtrip(codec, chunks):
    blob = pack_frames([codec.encode(c) for c in chunks])
    return b"".join(bytes(b) for b in decode_frames(blob))


def compressed_pack(payload):
    """A pack whose every frame is SFZ1 (zlib, adler32-protected)."""
    codec = SpillCodec(mode="always", level=1)
    frames = [codec.encode(payload + bytes(64))]  # pad: never expands
    blob = pack_frames(frames)
    assert all(f.compressed for f in frames)
    return blob


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        chunks=st.lists(st.binary(min_size=1, max_size=4096),
                        min_size=1, max_size=6),
        level=st.integers(min_value=1, max_value=9),
        mode=st.sampled_from(["adaptive", "always"]),
    )
    def test_any_bytes_survive(self, chunks, level, mode):
        codec = SpillCodec(mode=mode, level=level, probe_bytes=1024)
        assert roundtrip(codec, chunks) == b"".join(chunks)

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(max_size=2048))
    def test_single_frame_blob_reports_raw_len(self, data):
        if not data:
            return
        codec = SpillCodec(mode="always")
        blob = pack_frames([codec.encode(data)])
        assert blob.raw_len == len(data)
        assert len(blob) >= FRAME_OVERHEAD

    def test_highly_repetitive_vs_random_both_exact(self):
        codec = SpillCodec(mode="adaptive", probe_bytes=1024)
        import os

        for payload in (b"\x00" * 30_000, os.urandom(30_000),
                        zlib.compress(b"x" * 9000)):
            assert roundtrip(codec, [payload]) == payload


class TestTruncation:
    @settings(max_examples=40, deadline=None)
    @given(
        chunks=st.lists(st.binary(min_size=1, max_size=512),
                        min_size=1, max_size=4),
        data=st.data(),
    )
    def test_every_interior_cut_is_detected(self, chunks, data):
        codec = SpillCodec(mode="always", level=1)
        blob = bytes(pack_frames([codec.encode(c) for c in chunks]).tobytes())
        cut = data.draw(st.integers(min_value=1, max_value=len(blob) - 1))
        with pytest.raises(CorruptChunkError):
            decode_frames(blob[:cut])

    def test_empty_blob_decodes_to_nothing(self):
        assert decode_frames(b"") == []

    def test_appended_packs_decode_as_one_stream(self):
        # Disk coalescing appends whole packs; the decoder must walk
        # them back-to-back (remaining resets at each pack boundary).
        codec = SpillCodec(mode="always")
        one = pack_frames([codec.encode(b"alpha" * 100)]).tobytes()
        two = pack_frames([codec.encode(b"beta" * 100),
                           codec.encode(b"gamma" * 100)]).tobytes()
        bodies = decode_frames(one + two)
        assert b"".join(bytes(b) for b in bodies) == (
            b"alpha" * 100 + b"beta" * 100 + b"gamma" * 100
        )
        # ... and truncating the *second* pack still raises.
        with pytest.raises(CorruptChunkError):
            decode_frames(one + two[: len(two) - 3])


class TestBitFlips:
    @settings(max_examples=60, deadline=None)
    @given(
        payload=st.binary(min_size=1, max_size=2048),
        data=st.data(),
    )
    def test_header_flips_always_detected(self, payload, data):
        codec = SpillCodec(mode="always", level=1)
        blob = bytearray(pack_frames([codec.encode(payload)]).tobytes())
        bit = data.draw(st.integers(min_value=0,
                                    max_value=FRAME_OVERHEAD * 8 - 1))
        blob[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(SpongeError):
            decode_frames(bytes(blob))

    @settings(max_examples=60, deadline=None)
    @given(payload=st.binary(min_size=64, max_size=2048), data=st.data())
    def test_compressed_body_flips_detected(self, payload, data):
        blob = bytearray(compressed_pack(payload).tobytes())
        bit = data.draw(st.integers(min_value=FRAME_OVERHEAD * 8,
                                    max_value=len(blob) * 8 - 1))
        flipped = bytearray(blob)
        flipped[bit // 8] ^= 1 << (bit % 8)
        # zlib may still inflate some flips to *wrong* bytes of the
        # wrong length — adler32 catches those; flips that break the
        # deflate stream raise at inflate time.  Either way: an error,
        # or (for a vanishingly small adler32 collision) bytes of equal
        # length.  Silent truncation/extension is the bug class we
        # exclude.
        try:
            bodies = decode_frames(bytes(flipped))
        except SpongeError:
            return
        decoded = b"".join(bytes(b) for b in bodies)
        assert len(decoded) == len(payload) + 64

    def test_marker_swap_between_raw_and_zlib_detected(self):
        # Flipping SFZ1 <-> SFZ0 changes the header CRC input, so even
        # a "plausible" marker swap fails closed.
        codec = SpillCodec(mode="always")
        blob = bytearray(pack_frames([codec.encode(b"q" * 500)]).tobytes())
        assert bytes(blob[:4]) == b"SFZ1"
        blob[3] = ord("0")
        with pytest.raises(CorruptChunkError):
            decode_frames(bytes(blob))
