"""Unit tests for the span tracer: nesting, ring buffer, no-op path."""

import json
import threading

from repro.obs import trace
from repro.obs.trace import Tracer


class TestTracer:
    def test_span_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("op", nbytes=42) as span:
            pass
        assert len(tracer) == 1
        exported = tracer.export()[0]
        assert exported["name"] == "op"
        assert exported["attrs"] == {"nbytes": 42}
        assert exported["duration"] >= 0
        assert span.ended_at >= span.started_at

    def test_nested_spans_set_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span_id() == inner.span_id
            assert tracer.current_span_id() == outer.span_id
        assert tracer.current_span_id() is None
        by_name = {s["name"]: s for s in tracer.export()}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]

    def test_record_is_generator_safe(self):
        tracer = Tracer()
        span = tracer.record("store.write", 1.0, 3.5, location="local-disk")
        assert span.duration == 2.5
        assert tracer.export("store.write")[0]["attrs"] == {
            "location": "local-disk"
        }

    def test_ring_buffer_keeps_newest(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record(f"op{i}", 0.0, 1.0)
        names = [s["name"] for s in tracer.export()]
        assert names == ["op6", "op7", "op8", "op9"]

    def test_export_filter_and_json(self):
        tracer = Tracer(source="t")
        tracer.record("a", 0.0, 1.0)
        tracer.record("b", 0.0, 1.0)
        assert [s["name"] for s in tracer.export("b")] == ["b"]
        data = json.loads(tracer.to_json())
        assert data["source"] == "t"
        assert len(data["spans"]) == 2
        tracer.clear()
        assert len(tracer) == 0

    def test_threads_have_independent_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name):
                seen[name] = tracer.current_span_id()

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        parents = {s["name"]: s["parent_id"] for s in tracer.export()}
        assert all(p is None for p in parents.values())
        assert len(set(seen.values())) == 4


class TestModuleGlobal:
    def test_disarmed_span_is_noop(self):
        assert trace._tracer is None
        with trace.span("ignored") as span:
            assert span is None

    def test_tracing_context_installs_and_removes(self):
        with trace.tracing(source="ctx") as tracer:
            assert trace._tracer is tracer
            with trace.span("seen") as span:
                assert span is not None
            assert len(tracer) == 1
        assert trace._tracer is None
