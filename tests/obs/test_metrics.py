"""Unit tests for the metrics registry: kinds, buckets, merge laws."""

import threading

import pytest

from repro import obs
from repro.obs.metrics import (
    MAX_BUCKET_EXP,
    MIN_BUCKET_EXP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    bucket_index,
)


class TestBucketIndex:
    def test_exact_power_of_two_edges(self):
        # Bucket k covers [2**k, 2**(k+1)): the edge belongs to the
        # upper bucket, one ulp below it to the lower.
        assert bucket_index(1.0) == 0
        assert bucket_index(2.0) == 1
        assert bucket_index(2.0 - 2**-52) == 0
        assert bucket_index(4.0) == 2
        assert bucket_index(3.999999) == 1
        assert bucket_index(0.5) == -1
        assert bucket_index(1024) == 10

    def test_clamping_and_non_positive(self):
        assert bucket_index(0) == MIN_BUCKET_EXP
        assert bucket_index(-5.0) == MIN_BUCKET_EXP
        assert bucket_index(2.0**-100) == MIN_BUCKET_EXP
        assert bucket_index(2.0**200) == MAX_BUCKET_EXP


class TestMetricKinds:
    def test_counter_rejects_negative_increment(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_histogram_tracks_count_sum_min_max(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 8.0):
            hist.record(value)
        data = hist.to_dict()
        assert data["count"] == 3
        assert data["sum"] == 11.0
        assert data["min"] == 1.0
        assert data["max"] == 8.0
        assert data["buckets"] == {"0": 1, "1": 1, "3": 1}

    def test_registry_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_observe_records_duration(self):
        registry = MetricsRegistry()
        registry.observe("op.seconds", started_at=1.0, ended_at=1.5)
        snap = registry.snapshot()
        assert snap.histograms["op.seconds"]["count"] == 1
        assert snap.histograms["op.seconds"]["sum"] == 0.5


class TestSnapshotMerge:
    def build(self, source, counter, gauge, values):
        registry = MetricsRegistry(source=source)
        registry.counter("c").inc(counter)
        registry.gauge("g").set(gauge)
        for value in values:
            registry.histogram("h").record(value)
        return registry.snapshot()

    def test_merge_sums_counters_gauges_buckets(self):
        a = self.build("a", 3, 10, [1.0])
        b = self.build("b", 4, 5, [2.0, 1.5])
        merged = a.merge(b)
        assert merged.counters["c"] == 7
        assert merged.gauges["g"] == 15
        assert merged.histograms["h"]["count"] == 3
        assert merged.histograms["h"]["min"] == 1.0
        assert merged.histograms["h"]["max"] == 2.0
        assert merged.sources == ["a", "b"]

    def test_merge_is_associative(self):
        a = self.build("a", 1, 2, [0.5])
        b = self.build("b", 10, 20, [4.0, 4.5])
        c = self.build("c", 100, 200, [64.0])
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_dict() == right.to_dict()

    def test_merge_with_empty_is_identity(self):
        a = self.build("a", 5, 1, [2.0])
        empty = MetricsSnapshot()
        assert empty.merge(a).counters == a.counters
        assert a.merge(empty).histograms == a.histograms
        assert empty.empty and not a.empty

    def test_roundtrip_through_json_dict(self):
        a = self.build("a", 2, 3, [1.0, 1024.0])
        again = MetricsSnapshot.from_dict(a.to_dict())
        assert again.to_dict() == a.to_dict()
        assert again.merge(a).counters["c"] == 4

    def test_negative_counters_flagged(self):
        snap = MetricsSnapshot(counters={"ok": 1, "bad": -2})
        assert snap.negative_counters() == ["bad"]


class TestPrometheus:
    def test_exposition_shape(self):
        registry = MetricsRegistry(source="node0")
        registry.counter("server.alloc.count").inc(2)
        registry.gauge("server.pool.occupancy").set(0.5)
        registry.histogram("server.alloc.seconds").record(0.25)
        text = registry.snapshot().to_prometheus()
        assert "# TYPE server_alloc_count counter" in text
        assert "server_alloc_count 2" in text
        assert "# TYPE server_pool_occupancy gauge" in text
        assert "# TYPE server_alloc_seconds histogram" in text
        assert 'server_alloc_seconds_bucket{le="+Inf"} 1' in text
        assert "server_alloc_seconds_count 1" in text

    def test_cumulative_buckets(self):
        registry = MetricsRegistry()
        for value in (1.0, 1.5, 4.0):
            registry.histogram("h").record(value)
        text = registry.snapshot().to_prometheus()
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="8"} 3' in text


class TestThreadSafety:
    def test_concurrent_increments_do_not_drop(self):
        registry = MetricsRegistry()
        per_thread = 2000

        def worker():
            counter = registry.counter("hits")
            hist = registry.histogram("lat")
            for i in range(per_thread):
                counter.inc()
                hist.record(i % 7 + 0.5)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
        assert snap.counters["hits"] == 8 * per_thread
        assert snap.histograms["lat"]["count"] == 8 * per_thread

    def test_concurrent_creation_yields_one_instance(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            seen.append(registry.counter("same"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(c is seen[0] for c in seen)


class TestModuleGlobal:
    def test_install_uninstall(self):
        assert obs.installed() is None
        registry = obs.install(source="test")
        try:
            assert obs._registry is registry
            assert obs.installed() is registry
        finally:
            obs.uninstall()
        assert obs._registry is None

    def test_collecting_context(self):
        with obs.collecting(source="ctx") as registry:
            registry.counter("x").inc()
            assert obs._registry is registry
        assert obs._registry is None
