"""Integration: a remote spill shows up in ``LocalSpongeCluster.scrape``.

Spins up real server/tracker processes, spills a SpongeFile whose
chunks must land in *remote* sponge memory (no local pool attached),
reads it back, and asserts the merged scrape carries the acceptance
signals: server alloc/read counters, the tracker poll-age gauge,
connection reuse counts, and per-location allocation outcomes.
"""

import pytest

from repro import obs
from repro.runtime import LocalSpongeCluster
from repro.runtime.connection_pool import ConnectionPool
from repro.sponge import ChunkLocation, SpongeConfig, SpongeFile

CHUNK = 64 * 1024
POOL = 4 * CHUNK


@pytest.fixture(scope="module")
def cluster():
    with LocalSpongeCluster(num_nodes=3, pool_size=POOL, chunk_size=CHUNK,
                            poll_interval=0.1, gc_interval=0.5) as cluster:
        yield cluster


def test_remote_spill_visible_in_scrape(cluster):
    with obs.collecting(source="client") as registry:
        config = SpongeConfig(chunk_size=CHUNK)
        # A private pool so this test's reuse counts are its own.
        connections = ConnectionPool()
        chain = cluster.chain(0, config=config, attach_local_pool=False,
                              connection_pool=connections)
        owner = cluster.task_id(0, "scraped")
        sf = SpongeFile(owner, chain, config)
        payload = bytes(range(256)) * (3 * CHUNK // 256)
        sf.write_all(payload)
        sf.close_sync()
        assert all(
            h.location is ChunkLocation.REMOTE_MEMORY for h in sf.handles
        )
        assert sf.read_all() == payload

        snapshot = cluster.scrape()

        # Server side: allocations and reads of real bytes.
        assert snapshot.counters["server.alloc.count"] >= 3
        assert snapshot.counters["server.alloc.bytes"] >= 3 * CHUNK
        assert snapshot.counters["server.read.count"] >= 3
        assert snapshot.histograms["server.alloc.seconds"]["count"] >= 3
        # Tracker side: it polled recently and answered our free-list ask.
        assert 0.0 <= snapshot.gauges["tracker.poll.age_seconds"] < 30.0
        assert snapshot.counters["tracker.polls"] >= 1
        assert snapshot.counters["tracker.freelist.queries"] >= 1
        # Client side: per-location outcomes and pooled-connection reuse.
        assert snapshot.counters["alloc.outcome.remote-memory"] == 3
        assert snapshot.counters["alloc.bytes.remote-memory"] == 3 * CHUNK
        assert "alloc.outcome.local-memory" not in snapshot.counters
        assert snapshot.counters["conn.connects"] >= 1
        assert snapshot.counters["conn.reuses"] >= 1
        # The merged fold saw one snapshot per process plus our own.
        assert "client" in snapshot.sources
        assert any(s.startswith("sponge@") for s in snapshot.sources)
        assert "tracker" in snapshot.sources
        assert snapshot.negative_counters() == []

        sf.delete_sync()
        after_delete = cluster.scrape()
        assert after_delete.counters["server.free.count"] >= 3
        connections.close()


def test_scrape_without_client_registry_still_sees_servers(cluster):
    assert obs._registry is None
    snapshot = cluster.scrape()
    assert not snapshot.empty
    assert "tracker.poll.age_seconds" in snapshot.gauges


def test_stats_op_direct(cluster):
    from repro.runtime import protocol

    stats = protocol.fetch_stats(cluster.server_address(0))
    assert "counters" in stats and "gauges" in stats
    assert "server.pool.free_bytes" in stats["gauges"]
