"""Scaled-down runs of every experiment.

The benchmark suite runs the paper-scale versions; here each experiment
runs at a small scale to verify the *plumbing* — rows present, checks
evaluated, determinism — quickly enough for the unit suite.  Shape
checks that need paper scale to hold are not asserted here (scaled
physics differ); structural invariants are.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import (
    MacroRunConfig,
    grep_summary,
    reduction_percent,
    run_macro,
)
from repro.mapreduce.job import SpillMode
from repro.util.units import GB


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        for exp_id in ("fig1", "table1", "table2", "fig4", "fig5", "fig6",
                       "grep-variance", "failure-model", "effectiveness"):
            assert exp_id in EXPERIMENTS

    def test_ablations_registered(self):
        assert [e for e in EXPERIMENTS if e.startswith("ablation-")]


class TestCheapExperiments:
    """These run at full fidelity in well under a second."""

    def test_fig1_passes(self):
        result = EXPERIMENTS["fig1"]()
        assert result.all_passed, result.failed_checks()
        assert len(result.rows) == 24  # 3 series x 8 CDF points

    def test_failure_model_passes(self):
        result = EXPERIMENTS["failure-model"](trials=20_000)
        assert result.all_passed, result.failed_checks()

    def test_effectiveness_passes(self):
        result = EXPERIMENTS["effectiveness"]()
        assert result.all_passed, result.failed_checks()


class TestTable1Scaled:
    def test_ordering_holds_with_few_iterations(self):
        result = EXPERIMENTS["table1"](iterations=30)
        assert result.all_passed, result.failed_checks()
        media = [row["medium"] for row in result.rows]
        assert media[0] == "local shared memory"
        assert media[-1] == "disk + background IO + memory pressure"


class TestMacroScaled:
    SCALE = 0.1

    def test_table2_rows_and_structure(self):
        result = EXPERIMENTS["table2"](scale=self.SCALE)
        assert len(result.rows) == 3
        for row in result.rows:
            assert row["chunks"] > 0

    def test_fig4_rows(self):
        result = EXPERIMENTS["fig4"](scale=self.SCALE)
        assert len(result.rows) == 6  # 3 jobs x 2 memory sizes
        for row in result.rows:
            assert row["disk_s"] > 0 and row["sponge_s"] > 0

    def test_fig6_rows(self):
        result = EXPERIMENTS["fig6"](scale=self.SCALE)
        assert len(result.rows) == 3
        for row in result.rows:
            assert row["no spilling"] > 0


class TestMacroRunner:
    def test_determinism(self):
        config = MacroRunConfig(job="median", spill_mode=SpillMode.SPONGE,
                                scale=0.05)
        first = run_macro(config)
        second = run_macro(config)
        assert first.runtime == second.runtime
        assert (first.straggler.spilled_chunks
                == second.straggler.spilled_chunks)

    def test_background_grep_runs(self):
        # Needs enough scale that grep tasks (~16 s each) finish before
        # the foreground job does.
        outcome = run_macro(
            MacroRunConfig(job="median", spill_mode=SpillMode.DISK,
                           scale=0.3, background=True)
        )
        summary = grep_summary(outcome.grep_task_runtimes)
        assert summary["count"] > 0
        assert summary["p50"] > 0

    def test_memory_knob_respected(self):
        outcome = run_macro(
            MacroRunConfig(job="median", spill_mode=SpillMode.DISK,
                           node_memory=4 * GB, scale=0.05)
        )
        assert outcome.runtime > 0

    def test_reduction_percent(self):
        assert reduction_percent(100.0, 45.0) == pytest.approx(55.0)
        assert reduction_percent(0.0, 10.0) == 0.0
        assert grep_summary([]) == {"count": 0, "p50": 0.0, "max": 0.0}
