"""The experiment harness: results, tables, checks, CDF sampling."""

import pytest

from repro.experiments.harness import (
    ExperimentResult,
    ShapeCheck,
    ascii_bars,
    ascii_cdf,
)


class TestExperimentResult:
    def make(self):
        result = ExperimentResult("exp", "A Title", ["a", "b"])
        result.add_row(a=1, b="x")
        result.add_row(a=2.5, b="y")
        return result

    def test_table_renders_all_rows(self):
        table = self.make().to_table()
        assert "a" in table and "b" in table
        assert "2.5" in table and "y" in table

    def test_checks_aggregate(self):
        result = self.make()
        result.check("good", True)
        result.check("bad", False, "details")
        assert not result.all_passed
        assert len(result.failed_checks()) == 1
        assert "details" in str(result.failed_checks()[0])

    def test_report_contains_checks(self):
        result = self.make()
        result.check("claim", True)
        report = result.report()
        assert "[PASS] claim" in report
        assert "A Title" in report

    def test_empty_result_renders(self):
        result = ExperimentResult("e", "t", ["col"])
        assert "col" in result.to_table()

    def test_missing_column_value_blank(self):
        result = ExperimentResult("e", "t", ["a", "b"])
        result.add_row(a=1)
        assert "1" in result.to_table()


class TestShapeCheck:
    def test_str_shows_outcome(self):
        assert "[PASS]" in str(ShapeCheck("d", True))
        assert "[FAIL]" in str(ShapeCheck("d", False))


class TestAsciiHelpers:
    def test_bars_scale_to_peak(self):
        chart = ascii_bars(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bars_empty(self):
        assert ascii_bars([], []) == "(no data)"

    def test_cdf_sampling(self):
        xs = list(range(1, 101))
        fractions = [i / 100 for i in xs]
        samples = dict(ascii_cdf(xs, fractions, points=(0.5, 1.0),
                                 fmt=lambda v: v))
        assert samples[0.5] == pytest.approx(50, abs=1)
        assert samples[1.0] == 100
