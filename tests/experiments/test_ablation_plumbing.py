"""Fast structural checks of the ablation experiments.

The full shape checks run in the benchmark suite; here the quick
ablations run outright and the expensive ones are verified for
registration and row structure only.
"""

from repro.experiments import EXPERIMENTS
from repro.experiments.ablations import run_affinity, run_overlap


class TestQuickAblations:
    def test_overlap_ablation_passes(self):
        result = run_overlap()
        assert result.all_passed, result.failed_checks()
        assert {row["config"] for row in result.rows} == {
            "prefetch + async writes", "serialized IO"
        }

    def test_affinity_ablation_passes(self):
        result = run_affinity()
        assert result.all_passed, result.failed_checks()
        policies = [row["machines_used"] for row in result.rows]
        assert policies[0] < policies[1]


class TestRegistration:
    def test_all_ablations_registered(self):
        expected = {
            "ablation-chunk-size",
            "ablation-rack",
            "ablation-overlap",
            "ablation-affinity",
            "ablation-skew-avoidance",
            "ablation-speculation",
        }
        assert expected <= set(EXPERIMENTS)

    def test_registry_entries_are_callable(self):
        for runner in EXPERIMENTS.values():
            assert callable(runner)
