"""The CLI and the EXPERIMENTS.md report writer."""

import pytest

from repro.cli import main
from repro.experiments.report import PAPER_CONTEXT, generate_report


class TestCli:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table1" in out

    def test_experiment_runs_and_reports(self, capsys):
        assert main(["experiment", "failure-model"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_report_writes_file(self, tmp_path, capsys):
        # Restrict to a cheap experiment through the report API instead
        # of the CLI (the CLI always runs everything).
        target = tmp_path / "out.md"
        generate_report(exp_ids=["failure-model"], path=target,
                        verbose=False)
        text = target.read_text()
        assert "failure-model" in text
        assert "- [x]" in text

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestReport:
    def test_every_registered_experiment_has_paper_context(self):
        from repro.experiments import EXPERIMENTS

        missing = [e for e in EXPERIMENTS
                   if e not in PAPER_CONTEXT
                   and not e.startswith("ablation-")]
        assert not missing

    def test_report_renders_rows_and_checks(self, tmp_path):
        text = generate_report(
            exp_ids=["fig1", "effectiveness"],
            path=tmp_path / "r.md", verbose=False,
        )
        assert "## fig1" in text
        assert "## effectiveness" in text
        assert "shape checks passed" in text
        assert "```text" in text
