"""In-process chunk stores: the reference backends."""

import pytest

from repro.backends.memory_backends import (
    LocalPoolStore,
    MemoryDfsStore,
    MemoryDiskStore,
    ServerStore,
)
from repro.errors import ChunkLostError, OutOfSpongeMemory
from repro.sponge.chunk import ChunkLocation, TaskId
from repro.sponge.pool import SpongePool
from repro.sponge.server import SpongeServer
from repro.sponge.store import run_sync

OWNER = TaskId("h0", "t0")
CHUNK = 1024


class TestLocalPoolStore:
    def make(self, chunks=2):
        pool = SpongePool(chunks * CHUNK, CHUNK)
        return pool, LocalPoolStore(pool)

    def test_roundtrip_and_free(self):
        pool, store = self.make()
        handle = run_sync(store.write_chunk(OWNER, b"data"))
        assert handle.location is ChunkLocation.LOCAL_MEMORY
        assert run_sync(store.read_chunk(handle)) == b"data"
        run_sync(store.free_chunk(handle))
        assert pool.free_chunks == 2

    def test_full_pool_raises_out_of_memory(self):
        pool, store = self.make(chunks=1)
        run_sync(store.write_chunk(OWNER, b"x"))
        with pytest.raises(OutOfSpongeMemory):
            run_sync(store.write_chunk(OWNER, b"y"))

    def test_read_after_free_is_chunk_lost(self):
        pool, store = self.make()
        handle = run_sync(store.write_chunk(OWNER, b"gone"))
        run_sync(store.free_chunk(handle))
        with pytest.raises(ChunkLostError):
            run_sync(store.read_chunk(handle))

    def test_free_bytes_tracks_pool(self):
        pool, store = self.make(chunks=2)
        assert store.free_bytes() == 2 * CHUNK
        run_sync(store.write_chunk(OWNER, b"x"))
        assert store.free_bytes() == CHUNK


class TestServerStore:
    def make(self):
        pool = SpongePool(2 * CHUNK, CHUNK)
        server = SpongeServer("srv", "h1", pool)
        return server, ServerStore(server)

    def test_roundtrip_counts_server_stats(self):
        server, store = self.make()
        handle = run_sync(store.write_chunk(OWNER, b"remote"))
        assert handle.location is ChunkLocation.REMOTE_MEMORY
        assert run_sync(store.read_chunk(handle)) == b"remote"
        assert server.stats.remote_allocations == 1
        assert server.stats.reads_served == 1

    def test_store_id_is_server_id(self):
        server, store = self.make()
        assert store.store_id == "srv"

    def test_full_server_denied(self):
        server, store = self.make()
        run_sync(store.write_chunk(OWNER, b"1"))
        run_sync(store.write_chunk(OWNER, b"2"))
        with pytest.raises(OutOfSpongeMemory):
            run_sync(store.write_chunk(OWNER, b"3"))
        assert server.stats.remote_denied == 1


class TestDiskAndDfsStores:
    def test_disk_append_coalesces(self):
        store = MemoryDiskStore()
        handle = run_sync(store.write_chunk(OWNER, b"ab"))
        handle = run_sync(store.append_chunk(handle, b"cd"))
        assert handle.nbytes == 4
        assert run_sync(store.read_chunk(handle)) == b"abcd"

    def test_disk_usage_accounting(self):
        store = MemoryDiskStore(capacity=10)
        handle = run_sync(store.write_chunk(OWNER, b"12345"))
        assert store.free_bytes() == 5
        run_sync(store.free_chunk(handle))
        assert store.free_bytes() == 10

    def test_dfs_refuses_append(self):
        store = MemoryDfsStore()
        handle = run_sync(store.write_chunk(OWNER, b"x"))
        with pytest.raises(Exception):
            run_sync(store.append_chunk(handle, b"y"))

    def test_dfs_location(self):
        store = MemoryDfsStore()
        handle = run_sync(store.write_chunk(OWNER, b"x"))
        assert handle.location is ChunkLocation.DFS

    def test_lost_disk_chunk(self):
        store = MemoryDiskStore()
        handle = run_sync(store.write_chunk(OWNER, b"x"))
        run_sync(store.free_chunk(handle))
        with pytest.raises(ChunkLostError):
            run_sync(store.read_chunk(handle))
