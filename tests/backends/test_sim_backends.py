"""Simulated backends: cost ordering (Table 1 shape) and deployment."""

import pytest

from repro.backends.sim_backends import (
    IpcCosts,
    SimDiskChunkStore,
    SimLocalMemoryStore,
    SimLocalServerStore,
    SimRemoteMemoryStore,
    SimSpongeDeployment,
)
from repro.sim.cluster import ClusterSpec, SimCluster
from repro.sim.kernel import Environment
from repro.sim.node import NodeSpec
from repro.sponge.chunk import ChunkLocation, TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.pool import SpongePool
from repro.sponge.server import SpongeServer
from repro.sponge.spongefile import SimExecutor, SpongeFile
from repro.util.units import GB, MB


def small_cluster(nodes=3, sponge_pool=4 * MB, memory=16 * GB):
    env = Environment()
    spec = ClusterSpec(
        racks=1,
        nodes_per_rack=nodes,
        node=NodeSpec(memory=memory, sponge_pool=sponge_pool),
    )
    return env, SimCluster(env, spec)


def timed(env, gen):
    start = env.now
    result = env.run(env.process(gen))
    return env.now - start, result


class TestStoreCosts:
    """The Table 1 ordering must emerge from the cost models."""

    def setup_method(self):
        self.env, self.cluster = small_cluster()
        self.node = next(iter(self.cluster))
        self.owner = TaskId(self.node.node_id, "t")
        self.pool = SpongePool(8 * MB, 1 * MB)

    def _write_once(self, store, nbytes=1 * MB):
        def op():
            handle = yield from store.write_chunk(self.owner, b"x" * nbytes)
            return handle

        return timed(self.env, op())

    def test_local_shared_memory_is_cheapest(self):
        store = SimLocalMemoryStore(self.node, self.pool)
        elapsed, handle = self._write_once(store)
        assert elapsed == pytest.approx(0.001, rel=0.05)  # ~1 ms/MB
        assert handle.location is ChunkLocation.LOCAL_MEMORY

    def test_local_server_costs_more_than_shared_memory(self):
        server = SpongeServer("s", self.node.node_id, self.pool)
        store = SimLocalServerStore(self.node, server)
        elapsed, _ = self._write_once(store)
        assert 0.004 < elapsed < 0.010  # ~7 ms/MB

    def test_remote_memory_costs_more_than_local_server(self):
        peer = self.cluster.node_ids()[1]
        server = SpongeServer("s", peer, self.pool)
        store = SimRemoteMemoryStore(
            self.node, peer, server, self.cluster
        )
        elapsed, handle = self._write_once(store)
        assert 0.007 < elapsed < 0.012  # ~9 ms/MB on 1 GbE
        assert handle.location is ChunkLocation.REMOTE_MEMORY

    def test_ordering_matches_table1(self):
        shm = SimLocalMemoryStore(self.node, SpongePool(8 * MB, 1 * MB))
        srv_pool = SpongePool(8 * MB, 1 * MB)
        server = SpongeServer("s", self.node.node_id, srv_pool)
        srv = SimLocalServerStore(self.node, server)
        peer_id = self.cluster.node_ids()[1]
        remote_server = SpongeServer("r", peer_id, SpongePool(8 * MB, 1 * MB))
        rem = SimRemoteMemoryStore(self.node, peer_id, remote_server, self.cluster)

        t_shm, _ = self._write_once(shm)
        t_srv, _ = self._write_once(srv)
        t_rem, _ = self._write_once(rem)

        def disk_write():
            # Direct disk write with a seek (the Table 1 pattern).
            yield self.node.disk.write("bench", 1 * MB, random=True)

        t_disk, _ = timed(self.env, disk_write())
        assert t_shm < t_srv < t_rem < t_disk
        assert t_disk > 10 * t_shm  # memory vs disk: order of magnitude+

    def test_ipc_cost_model(self):
        ipc = IpcCosts()
        assert ipc.cost(1 * MB) > ipc.cost(0)


class TestSimDiskStore:
    def test_roundtrip_and_append(self):
        env, cluster = small_cluster()
        node = next(iter(cluster))
        store = SimDiskChunkStore(node)
        owner = TaskId(node.node_id, "t")

        def workload():
            handle = yield from store.write_chunk(owner, b"aa")
            handle = yield from store.append_chunk(handle, b"bb")
            data = yield from store.read_chunk(handle)
            yield from store.free_chunk(handle)
            return handle, data

        handle, data = env.run(env.process(workload()))
        assert handle.nbytes == 4
        assert data == b"aabb"


class TestDeployment:
    def test_spongefile_over_simulated_cluster(self):
        env, cluster = small_cluster(nodes=3, sponge_pool=2 * MB)
        deploy = SimSpongeDeployment(env, cluster)
        node_id = cluster.node_ids()[0]
        owner = TaskId(node_id, "task-0")
        deploy.registry.start(owner)
        executor = SimExecutor(env)
        payload = b"q" * (5 * MB)  # 2 local + 3 remote chunks

        def task():
            sf = SpongeFile(owner, deploy.chain(node_id), deploy.config,
                            executor=executor)
            yield from sf.write(payload)
            yield from sf.close()
            reader = sf.open_reader()
            parts = []
            while True:
                chunk = yield from reader.next_chunk()
                if chunk is None:
                    break
                parts.append(chunk)
            locations = [h.location for h in sf.handles]
            yield from sf.delete()
            return b"".join(parts), locations

        proc = env.process(task())
        data, locations = env.run(proc)
        assert data == payload
        assert locations.count(ChunkLocation.LOCAL_MEMORY) == 2
        assert locations.count(ChunkLocation.REMOTE_MEMORY) == 3
        assert deploy.total_sponge_bytes_used() == 0  # deleted

    def test_nodes_without_pool_spill_remotely(self):
        env, cluster = small_cluster(nodes=2, sponge_pool=0)
        deploy = SimSpongeDeployment(env, cluster)
        assert deploy.pools == {}
        node_id = cluster.node_ids()[0]
        owner = TaskId(node_id, "t")

        def task():
            sf = SpongeFile(owner, deploy.chain(node_id), deploy.config,
                            executor=SimExecutor(env))
            yield from sf.write(b"z" * (2 * MB))
            yield from sf.close()
            return sf

        sf = env.run(env.process(task()))
        assert all(h.location is ChunkLocation.LOCAL_DISK for h in sf.handles)
