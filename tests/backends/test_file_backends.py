"""The real local-filesystem chunk store."""

import pytest

from repro.errors import ChunkLostError, OutOfSpongeMemory, SpongeError
from repro.backends.file_backends import FileDiskStore
from repro.sponge.allocator import AllocationChain
from repro.sponge.chunk import ChunkLocation, TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.spongefile import SpongeFile
from repro.sponge.store import run_sync

OWNER = TaskId("hostA", "task-7")


@pytest.fixture
def store(tmp_path):
    return FileDiskStore(tmp_path / "spill")


class TestFileDiskStore:
    def test_write_creates_real_file(self, store, tmp_path):
        handle = run_sync(store.write_chunk(OWNER, b"bytes on disk"))
        assert handle.location is ChunkLocation.LOCAL_DISK
        files = list((tmp_path / "spill").rglob("chunk-*"))
        assert len(files) == 1
        assert files[0].read_bytes() == b"bytes on disk"

    def test_chunks_live_in_per_task_directories(self, store, tmp_path):
        run_sync(store.write_chunk(OWNER, b"a"))
        other = TaskId("hostB", "task-8")
        run_sync(store.write_chunk(other, b"b"))
        dirs = {p.name for p in (tmp_path / "spill").iterdir()}
        assert dirs == {"task-7@hostA", "task-8@hostB"}

    def test_append_grows_the_same_file(self, store):
        handle = run_sync(store.write_chunk(OWNER, b"first"))
        handle = run_sync(store.append_chunk(handle, b"+second"))
        assert handle.nbytes == len(b"first+second")
        assert run_sync(store.read_chunk(handle)) == b"first+second"

    def test_free_unlinks(self, store, tmp_path):
        handle = run_sync(store.write_chunk(OWNER, b"doomed"))
        run_sync(store.free_chunk(handle))
        assert not list((tmp_path / "spill").rglob("chunk-*"))
        with pytest.raises(ChunkLostError):
            run_sync(store.read_chunk(handle))

    def test_capacity_enforced(self, tmp_path):
        store = FileDiskStore(tmp_path / "s", capacity=10)
        run_sync(store.write_chunk(OWNER, b"12345"))
        with pytest.raises(OutOfSpongeMemory):
            run_sync(store.write_chunk(OWNER, b"678901"))

    def test_non_bytes_rejected(self, store):
        from repro.sponge.blob import Payload

        with pytest.raises(SpongeError):
            run_sync(store.write_chunk(OWNER, Payload.of([1], 10)))

    def test_cleanup_task_removes_directory(self, store, tmp_path):
        run_sync(store.write_chunk(OWNER, b"temp"))
        store.cleanup_task(OWNER)
        assert not (tmp_path / "spill" / "task-7@hostA").exists()

    def test_spongefile_spills_to_real_files(self, store, tmp_path):
        config = SpongeConfig(chunk_size=1024)
        chain = AllocationChain(
            local_store=None, tracker=None, remote_store_factory=None,
            disk_store=store, config=config,
        )
        sf = SpongeFile(OWNER, chain, config)
        payload = bytes(range(256)) * 16  # 4 KB
        sf.write_all(payload)
        sf.close_sync()
        # Coalescing: 4 chunks appended into ONE file on disk.
        files = list((tmp_path / "spill").rglob("chunk-*"))
        assert len(files) == 1
        assert sf.read_all() == payload
        sf.delete_sync()
        assert not list((tmp_path / "spill").rglob("chunk-*"))
