"""Disk model tests: sequential speed, seeks, contention collapse."""

import pytest

from repro.sim.disk import Disk
from repro.sim.kernel import Environment
from repro.util.units import MB


def make_disk(env, bw=100 * MB, seek=0.015):
    return Disk(env, seq_bandwidth=bw, seek_time=seek)


def test_single_sequential_stream_runs_at_full_bandwidth():
    env = Environment()
    disk = make_disk(env)

    def writer():
        for _ in range(10):
            yield disk.write("f", 10 * MB)

    env.run(env.process(writer()))
    # One seek at the start, then pure sequential transfer.
    expected = 0.015 + 100 * MB / (100 * MB)
    assert env.now == pytest.approx(expected)
    assert disk.stats.seeks == 1
    assert disk.stats.bytes_written == 100 * MB


def test_random_writes_seek_every_time():
    env = Environment()
    disk = make_disk(env)

    def writer():
        for _ in range(10):
            yield disk.write("f", 1 * MB, random=True)

    env.run(env.process(writer()))
    assert disk.stats.seeks == 10
    assert env.now == pytest.approx(10 * (0.015 + 0.01))


def test_interleaved_streams_cause_seeks():
    env = Environment()
    disk = make_disk(env)

    def reader(stream, chunk, count):
        for _ in range(count):
            yield disk.read(stream, chunk)

    a = env.process(reader("a", 1 * MB, 5))
    b = env.process(reader("b", 1 * MB, 5))
    env.run()
    assert a.triggered and b.triggered
    # Streams alternate: nearly every request pays a seek.
    assert disk.stats.seeks >= 9


def test_contention_collapses_throughput():
    """Two interleaved streams are much slower than one stream of the
    same total size — the §3.1.5 argument for network spilling."""
    total = 50 * MB
    chunk = 1 * MB

    env = Environment()
    solo = make_disk(env)

    def run_stream(disk, stream, nbytes):
        for _ in range(int(nbytes // chunk)):
            yield disk.read(stream, chunk)

    env.run(env.process(run_stream(solo, "s", total)))
    solo_time = env.now

    env2 = Environment()
    shared = make_disk(env2)
    env2.process(run_stream(shared, "a", total // 2))
    env2.process(run_stream(shared, "b", total // 2))
    env2.run()
    contended_time = env2.now

    assert contended_time > 2.0 * solo_time


def test_queueing_delay_observed_by_later_request():
    env = Environment()
    disk = make_disk(env)
    finish = {}

    def submit(name, stream, nbytes):
        yield disk.read(stream, nbytes)
        finish[name] = env.now

    env.process(submit("big", "a", 100 * MB))
    env.process(submit("small", "b", 1 * MB))
    env.run()
    # The small request waits behind the big one (FCFS).
    assert finish["small"] > 1.0


def test_service_time_helper_matches_simulation():
    env = Environment()
    disk = make_disk(env)

    def one():
        yield disk.write("x", 1 * MB)

    env.run(env.process(one()))
    assert env.now == pytest.approx(disk.service_time(1 * MB, seek=True))
