"""Kernel edge cases: condition failures, cross-env guards, defusing."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import AllOf, AnyOf, Environment


class TestConditionFailures:
    def test_all_of_fails_fast_on_child_failure(self):
        env = Environment()

        def failing():
            yield env.timeout(1)
            raise ValueError("child died")

        def slow():
            yield env.timeout(100)
            return "late"

        def waiter():
            with pytest.raises(ValueError, match="child died"):
                yield AllOf(env, [env.process(failing()),
                                  env.process(slow())])
            return env.now

        failed_at = env.run(env.process(waiter()))
        assert failed_at == 1  # did not wait for the slow child

    def test_any_of_failure_propagates(self):
        env = Environment()

        def failing():
            yield env.timeout(1)
            raise RuntimeError("first to finish, badly")

        def waiter():
            with pytest.raises(RuntimeError):
                yield AnyOf(env, [env.process(failing()),
                                  env.timeout(50)])

        env.run(env.process(waiter()))

    def test_all_of_with_pretriggered_events(self):
        env = Environment()
        done = env.event()
        done.succeed("early")
        env.run(until=0.1)  # process the event

        def waiter():
            values = yield AllOf(env, [done, env.timeout(1, "late")])
            return values

        assert env.run(env.process(waiter())) == ["early", "late"]

    def test_late_failures_after_condition_resolution_are_defused(self):
        env = Environment()

        def failing():
            yield env.timeout(10)
            raise ValueError("nobody is watching anymore")

        def waiter():
            value = yield AnyOf(env, [env.timeout(1, "fast"),
                                      env.process(failing())])
            return value

        proc = env.process(waiter())
        assert env.run(proc) == "fast"
        env.run()  # the late failure must not crash the drain


class TestCrossEnvironmentGuards:
    def test_yielding_foreign_event_fails_process(self):
        env_a = Environment()
        env_b = Environment()

        def confused():
            yield env_b.timeout(1)

        proc = env_a.process(confused())
        with pytest.raises(SimulationError, match="another environment"):
            env_a.run(proc)


class TestRunSemantics:
    def test_run_until_past_deadline_rejected(self):
        env = Environment()
        env.timeout(5)
        env.run(until=5)
        with pytest.raises(SimulationError):
            env.run(until=1)

    def test_peek_reports_next_event_time(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(7)
        assert env.peek() == 7

    def test_value_of_pending_event_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")
