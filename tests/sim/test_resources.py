"""Unit tests for mutex, store, and shared-bandwidth resources."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Environment
from repro.sim.resources import Mutex, SharedBandwidth, Store


class TestMutex:
    def test_uncontended_acquire_is_immediate(self):
        env = Environment()
        mutex = Mutex(env)

        def work():
            yield mutex.acquire()
            assert mutex.locked
            mutex.release()

        env.run(env.process(work()))
        assert not mutex.locked

    def test_fifo_ordering(self):
        env = Environment()
        mutex = Mutex(env)
        order = []

        def worker(name, hold):
            yield mutex.acquire()
            order.append(name)
            yield env.timeout(hold)
            mutex.release()

        env.process(worker("first", 5))
        env.process(worker("second", 1))
        env.process(worker("third", 1))
        env.run()
        assert order == ["first", "second", "third"]
        assert env.now == 7

    def test_release_unlocked_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Mutex(env).release()


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")

        def getter():
            item = yield store.get()
            return item

        assert env.run(env.process(getter())) == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter():
            item = yield store.get()
            got.append((env.now, item))

        env.process(getter())

        def putter():
            yield env.timeout(4)
            store.put("late")

        env.process(putter())
        env.run()
        assert got == [(4, "late")]

    def test_fifo_items(self):
        env = Environment()
        store = Store(env)
        for i in range(3):
            store.put(i)

        def getter():
            items = []
            for _ in range(3):
                items.append((yield store.get()))
            return items

        assert env.run(env.process(getter())) == [0, 1, 2]


class TestSharedBandwidth:
    def test_single_flow_gets_full_capacity(self):
        env = Environment()
        link = SharedBandwidth(env, capacity=100.0)

        def xfer():
            yield link.transfer(500.0)

        env.run(env.process(xfer()))
        assert env.now == pytest.approx(5.0)

    def test_two_equal_flows_halve_throughput(self):
        env = Environment()
        link = SharedBandwidth(env, capacity=100.0)
        finishes = []

        def xfer(name):
            yield link.transfer(500.0)
            finishes.append((env.now, name))

        env.process(xfer("a"))
        env.process(xfer("b"))
        env.run()
        assert [t for t, _ in finishes] == [pytest.approx(10.0)] * 2

    def test_late_joiner_slows_first_flow(self):
        env = Environment()
        link = SharedBandwidth(env, capacity=100.0)
        finishes = {}

        def xfer(name, start, nbytes):
            yield env.timeout(start)
            yield link.transfer(nbytes)
            finishes[name] = env.now

        env.process(xfer("early", 0, 1000))
        env.process(xfer("late", 5, 250))
        env.run()
        # early: 5s alone (500 bytes) + shared until late finishes.
        # late: 250 bytes at 50 B/s -> 5s, ends at t=10.
        assert finishes["late"] == pytest.approx(10.0)
        # early then has 250 left, alone at 100 B/s -> ends at 12.5.
        assert finishes["early"] == pytest.approx(12.5)

    def test_zero_byte_transfer_completes_instantly(self):
        env = Environment()
        link = SharedBandwidth(env, capacity=10.0)
        event = link.transfer(0)
        assert event.triggered

    def test_negative_transfer_rejected(self):
        env = Environment()
        link = SharedBandwidth(env, capacity=10.0)
        with pytest.raises(SimulationError):
            link.transfer(-1)

    def test_bytes_served_accounted(self):
        env = Environment()
        link = SharedBandwidth(env, capacity=100.0)

        def xfer():
            yield link.transfer(300.0)

        env.run(env.process(xfer()))
        assert link.bytes_served == 300.0

    def test_utilization_reflects_busy_fraction(self):
        env = Environment()
        link = SharedBandwidth(env, capacity=100.0)

        def xfer():
            yield link.transfer(100.0)  # busy 1s
            yield env.timeout(9.0)  # idle 9s

        env.run(env.process(xfer()))
        assert link.utilization() == pytest.approx(0.1)
