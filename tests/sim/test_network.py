"""Network model tests: fair sharing, rack locality, RTT accounting."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.util.units import MB


def make_net(env, nodes=4, racks=1, uplink=None):
    net = Network(env, nic_bandwidth=125 * MB, rtt=0.0002,
                  rack_uplink_bandwidth=uplink)
    for r in range(racks):
        for n in range(nodes):
            net.add_node(f"r{r}n{n}", f"rack{r}")
    return net


def test_single_transfer_time_matches_estimate():
    env = Environment()
    net = make_net(env)

    def xfer():
        yield net.transfer("r0n0", "r0n1", 1 * MB)

    env.run(env.process(xfer()))
    assert env.now == pytest.approx(net.transfer_time_estimate(1 * MB), rel=1e-6)


def test_loopback_transfer_is_free():
    env = Environment()
    net = make_net(env)
    event = net.transfer("r0n0", "r0n0", 100 * MB)
    assert event.triggered


def test_receiver_bottleneck_shared_fairly():
    env = Environment()
    net = make_net(env)
    finishes = {}

    def xfer(name, src):
        yield net.transfer(src, "r0n3", 10 * MB)
        finishes[name] = env.now

    env.process(xfer("a", "r0n0"))
    env.process(xfer("b", "r0n1"))
    env.run()
    # Two flows into one downlink: each gets half the NIC.
    expected = 0.0002 + 20 * MB / (125 * MB)
    assert finishes["a"] == pytest.approx(expected, rel=0.01)
    assert finishes["b"] == pytest.approx(expected, rel=0.01)


def test_disjoint_pairs_do_not_interfere():
    env = Environment()
    net = make_net(env)
    finishes = {}

    def xfer(name, src, dst):
        yield net.transfer(src, dst, 10 * MB)
        finishes[name] = env.now

    env.process(xfer("a", "r0n0", "r0n1"))
    env.process(xfer("b", "r0n2", "r0n3"))
    env.run()
    expected = 0.0002 + 10 * MB / (125 * MB)
    for t in finishes.values():
        assert t == pytest.approx(expected, rel=0.01)


def test_cross_rack_flows_share_oversubscribed_uplink():
    env = Environment()
    net = make_net(env, nodes=4, racks=2, uplink=125 * MB)
    finishes = {}

    def xfer(name, src, dst):
        yield net.transfer(src, dst, 10 * MB)
        finishes[name] = env.now

    # Four cross-rack flows from distinct senders to distinct receivers
    # all squeeze through one 125 MB/s rack uplink.
    for i in range(4):
        env.process(xfer(f"x{i}", f"r0n{i}", f"r1n{i}"))
    env.run()
    expected = 0.0002 + 40 * MB / (125 * MB)
    for t in finishes.values():
        assert t == pytest.approx(expected, rel=0.02)
    assert net.stats.cross_rack_transfers == 4


def test_same_rack_flows_bypass_uplink():
    env = Environment()
    net = make_net(env, nodes=4, racks=2, uplink=1 * MB)

    def xfer():
        yield net.transfer("r0n0", "r0n1", 10 * MB)

    env.run(env.process(xfer()))
    # A tiny uplink does not matter for same-rack traffic.
    assert env.now == pytest.approx(0.0002 + 10 * MB / (125 * MB), rel=0.01)


def test_unknown_node_rejected():
    env = Environment()
    net = make_net(env)
    with pytest.raises(SimulationError):
        net.transfer("nope", "r0n0", 1)


def test_duplicate_node_rejected():
    env = Environment()
    net = make_net(env)
    with pytest.raises(SimulationError):
        net.add_node("r0n0", "rack0")


def test_stats_accumulate():
    env = Environment()
    net = make_net(env)

    def xfer():
        yield net.transfer("r0n0", "r0n1", 3 * MB)

    env.run(env.process(xfer()))
    assert net.stats.transfers == 1
    assert net.stats.bytes_transferred == 3 * MB
