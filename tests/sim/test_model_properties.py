"""Property-based tests of the hardware models' conservation laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.buffercache import BufferCache
from repro.sim.disk import Disk
from repro.sim.kernel import AllOf, Environment
from repro.sim.network import Network
from repro.util.units import GB, MB


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "read", "drop", "reread"]),
            st.integers(0, 3),  # file id
            st.integers(1, 12),  # MB
        ),
        min_size=1,
        max_size=25,
    ),
    capacity_mb=st.integers(4, 64),
)
def test_buffercache_invariants_under_random_workloads(ops, capacity_mb):
    """No op sequence may corrupt dirty accounting or overflow capacity,
    and the simulation must always terminate (no writer deadlock)."""
    env = Environment()
    disk = Disk(env, seq_bandwidth=100 * MB, seek_time=0.01)
    cache = BufferCache(env, disk, capacity=capacity_mb * MB,
                        mem_bandwidth=1 * GB)

    def workload():
        for op, file_index, size_mb in ops:
            file_id = f"f{file_index}"
            if op == "write":
                yield from cache.write(file_id, size_mb * MB)
            elif op == "read":
                yield from cache.read(file_id, size_mb * MB)
            elif op == "reread":
                cache.seek(file_id, 0)
                yield from cache.read(file_id, size_mb * MB)
            else:
                cache.drop(file_id)
            cache.check_invariants()

    env.run(env.process(workload()))
    env.run(until=env.now + 120)  # let the flusher settle
    cache.check_invariants()


@settings(max_examples=25, deadline=None)
@given(
    transfers=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3),
                  st.integers(1, 64)),
        min_size=1,
        max_size=15,
    )
)
def test_network_conserves_bytes_and_respects_link_capacity(transfers):
    """Every transfer completes; total bytes match; nothing finishes
    faster than the NIC line rate allows."""
    env = Environment()
    net = Network(env, nic_bandwidth=125 * MB, rtt=0.0002)
    for i in range(4):
        net.add_node(f"n{i}", "rack0")

    events = []
    expected_bytes = 0
    for src, dst, size_mb in transfers:
        events.append(
            net.transfer(f"n{src}", f"n{dst}", size_mb * MB)
        )
        if src != dst:
            expected_bytes += size_mb * MB
    env.run(AllOf(env, events))
    assert net.stats.bytes_transferred == expected_bytes
    assert not net._flows  # nothing leaked
    # Line-rate bound: per-receiver inbound bytes / capacity is a lower
    # bound on the finish time.
    inbound: dict = {}
    for src, dst, size_mb in transfers:
        if src != dst:
            inbound[dst] = inbound.get(dst, 0) + size_mb * MB
    if inbound:
        busiest = max(inbound.values())
        assert env.now >= busiest / (125 * MB) - 1e-6


def test_network_rates_never_exceed_capacity_snapshot():
    """At an instant with many concurrent flows, the max-min allocation
    must respect every link's capacity."""
    env = Environment()
    net = Network(env, nic_bandwidth=100 * MB, rtt=0.0)
    for i in range(5):
        net.add_node(f"n{i}", "rack0")
    for src in range(4):
        for _ in range(2):
            net.transfer(f"n{src}", "n4", 500 * MB)
    env.run(until=0.5)  # flows established, none finished
    per_link: dict = {}
    for flow in net._flows:
        for link in flow.links:
            per_link[link] = per_link.get(link, 0.0) + flow.rate
    for link, total_rate in per_link.items():
        assert total_rate <= link.capacity * (1 + 1e-9)
    # The receiver's downlink is the bottleneck and must be saturated.
    saturated = [
        link for link, rate in per_link.items()
        if rate == pytest.approx(link.capacity, rel=1e-6)
    ]
    assert saturated


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 32), min_size=1, max_size=10)
)
def test_disk_work_conservation(sizes):
    """Total service time equals seeks + bytes/bandwidth regardless of
    arrival interleaving."""
    env = Environment()
    disk = Disk(env, seq_bandwidth=100 * MB, seek_time=0.01)

    def submit(stream, size_mb):
        def op():
            yield disk.read(stream, size_mb * MB)

        return env.process(op())

    procs = [submit(f"s{i}", size) for i, size in enumerate(sizes)]
    env.run(AllOf(env, procs))
    expected = disk.stats.seeks * 0.01 + sum(sizes) * MB / (100 * MB)
    assert env.now == pytest.approx(expected, rel=1e-9)
    assert disk.stats.bytes_read == sum(sizes) * MB
