"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimDeadlock, SimulationError
from repro.sim.kernel import AllOf, AnyOf, Environment, Interrupt


def test_timeout_advances_clock():
    env = Environment()
    done = env.timeout(5.0)
    env.run(done)
    assert env.now == 5.0


def test_timeout_carries_value():
    env = Environment()
    assert env.run(env.timeout(1.0, value="hello")) == "hello"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_returns_value():
    env = Environment()

    def work():
        yield env.timeout(2.0)
        yield env.timeout(3.0)
        return 42

    proc = env.process(work())
    assert env.run(proc) == 42
    assert env.now == 5.0


def test_processes_interleave_in_time_order():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("slow", 10))
    env.process(worker("fast", 1))
    env.process(worker("mid", 5))
    env.run()
    assert log == [(1, "fast"), (5, "mid"), (10, "slow")]


def test_process_waits_on_process():
    env = Environment()

    def inner():
        yield env.timeout(7)
        return "inner-result"

    def outer():
        result = yield env.process(inner())
        return result + "!"

    assert env.run(env.process(outer())) == "inner-result!"


def test_event_succeed_resumes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append(value)

    env.process(waiter())

    def opener():
        yield env.timeout(3)
        gate.succeed("open")

    env.process(opener())
    env.run()
    assert seen == ["open"]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_failed_event_raises_in_waiter():
    env = Environment()

    def failing():
        yield env.timeout(1)
        raise ValueError("boom")

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield env.process(failing())
        return "survived"

    assert env.run(env.process(waiter())) == "survived"


def test_unobserved_failure_crashes_the_run():
    env = Environment()

    def failing():
        yield env.timeout(1)
        raise ValueError("unseen")

    env.process(failing())
    with pytest.raises(ValueError, match="unseen"):
        env.run()


def test_run_until_event_failure_reraises():
    env = Environment()

    def failing():
        yield env.timeout(1)
        raise RuntimeError("fatal")

    proc = env.process(failing())
    with pytest.raises(RuntimeError, match="fatal"):
        env.run(proc)


def test_run_until_deadline_stops_early():
    env = Environment()
    ticks = []

    def ticker():
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(ticker())
    env.run(until=3.5)
    assert ticks == [1, 2, 3]
    assert env.now == 3.5


def test_deadlock_detected():
    env = Environment()

    def stuck():
        yield env.event()  # never triggered

    proc = env.process(stuck())
    with pytest.raises(SimDeadlock):
        env.run(proc)


def test_yield_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    proc = env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run(proc)


def test_all_of_collects_values_in_order():
    env = Environment()

    def waiter():
        values = yield AllOf(env, [env.timeout(3, "c"), env.timeout(1, "a")])
        return values

    assert env.run(env.process(waiter())) == ["c", "a"]
    assert env.now == 3


def test_all_of_empty_succeeds_immediately():
    env = Environment()

    def waiter():
        values = yield AllOf(env, [])
        return values

    assert env.run(env.process(waiter())) == []


def test_any_of_returns_first():
    env = Environment()

    def waiter():
        value = yield AnyOf(env, [env.timeout(3, "slow"), env.timeout(1, "fast")])
        return value

    assert env.run(env.process(waiter())) == "fast"
    assert env.now == 1


def test_interrupt_delivers_into_process():
    env = Environment()
    caught = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            caught.append((env.now, interrupt.cause))
        return "done"

    proc = env.process(sleeper())

    def killer():
        yield env.timeout(2)
        proc.interrupt("node-failure")

    env.process(killer())
    env.run(proc)
    assert caught == [(2, "node-failure")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run(proc)
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_ties_broken_deterministically():
    env = Environment()
    order = []

    def worker(name):
        yield env.timeout(1)
        order.append(name)

    for name in "abc":
        env.process(worker(name))
    env.run()
    assert order == ["a", "b", "c"]
