"""Buffer-cache model tests: absorption, write-back, eviction, stalls."""

import pytest

from repro.sim.buffercache import BufferCache
from repro.sim.disk import Disk
from repro.sim.kernel import Environment
from repro.util.units import GB, MB


def make_cache(env, capacity=64 * MB, **kwargs):
    disk = Disk(env, seq_bandwidth=100 * MB, seek_time=0.015)
    cache = BufferCache(
        env, disk, capacity=capacity, mem_bandwidth=1 * GB, **kwargs
    )
    return cache, disk


def run(env, gen):
    return env.run(env.process(gen))


def test_small_write_absorbed_without_disk_io():
    env = Environment()
    cache, disk = make_cache(env)

    def writer():
        yield from cache.write("f", 4 * MB)

    run(env, writer())
    assert disk.stats.bytes_written == 0
    assert cache.dirty_pages == 4
    # Absorbed at memory speed: ~4ms, not ~55ms of disk time.
    assert env.now < 0.01


def test_read_after_write_hits_cache():
    env = Environment()
    cache, disk = make_cache(env)

    def workload():
        yield from cache.write("f", 8 * MB)
        hit = yield from cache.read("f", 8 * MB)
        return hit

    hit_bytes = run(env, workload())
    assert hit_bytes == 8 * MB
    assert disk.stats.bytes_read == 0


def test_cold_read_misses_to_disk():
    env = Environment()
    cache, disk = make_cache(env)

    def workload():
        hit = yield from cache.read("cold-file", 8 * MB)
        return hit

    hit_bytes = run(env, workload())
    assert hit_bytes == 0
    assert disk.stats.bytes_read == 8 * MB


def test_writes_beyond_capacity_reach_disk():
    env = Environment()
    cache, disk = make_cache(env, capacity=16 * MB)

    def writer():
        yield from cache.write("big", 64 * MB)

    run(env, writer())
    # The cache cannot hold 64 MB; most of it was written back.
    assert disk.stats.bytes_written >= 32 * MB
    cache.check_invariants()


def test_sequential_flooding_evicts_head_of_file():
    """Write more than capacity, then re-read from the start: the early
    pages were evicted (LRU), so re-reads miss — the median-job story."""
    env = Environment()
    cache, disk = make_cache(env, capacity=16 * MB)

    def workload():
        yield from cache.write("spill", 64 * MB)
        hit = yield from cache.read("spill", 64 * MB)
        return hit

    hit_bytes = run(env, workload())
    assert hit_bytes < 16 * MB
    assert disk.stats.bytes_read > 32 * MB


def test_small_spill_fully_served_from_cache_when_memory_abundant():
    """The frequent-anchortext story at 16 GB: spill fits in cache, so
    'disk' spilling is really memory spilling."""
    env = Environment()
    cache, disk = make_cache(env, capacity=1 * GB)

    def workload():
        yield from cache.write("spill", 100 * MB)
        hit = yield from cache.read("spill", 100 * MB)
        return hit

    hit_bytes = run(env, workload())
    assert hit_bytes == 100 * MB
    assert disk.stats.bytes_read == 0


def test_drop_discards_dirty_pages_without_writeback():
    env = Environment()
    cache, disk = make_cache(env)

    def workload():
        yield from cache.write("temp", 8 * MB)
        cache.drop("temp")
        yield env.timeout(10.0)

    run(env, workload())
    assert cache.cached_pages == 0
    assert cache.stats.dropped_dirty_bytes == 8 * MB


def test_writeback_batches_scale_with_cache_size():
    """A big cache batches write-back into long sequential runs; a
    starved cache degrades to small requests (more seeks under
    contention) — the memory-pressure mechanism of Table 1."""

    def measure(capacity):
        env = Environment()
        cache, disk = make_cache(env, capacity=capacity)

        def writer():
            yield from cache.write("f", 4 * capacity)

        run(env, writer())
        assert cache.stats.writeback_runs > 0
        return cache.stats.writeback_bytes / cache.stats.writeback_runs

    big_cache_run = measure(1 * GB)
    small_cache_run = measure(32 * MB)
    assert big_cache_run >= 8 * MB
    assert small_cache_run <= 4 * MB
    assert big_cache_run > small_cache_run


def test_invariants_hold_under_mixed_workload():
    env = Environment()
    cache, disk = make_cache(env, capacity=8 * MB)

    def workload():
        for i in range(8):
            yield from cache.write(f"f{i}", 3 * MB)
            yield from cache.read(f"f{i % 3}", 1 * MB)
        cache.drop("f0")
        yield from cache.write("f9", 10 * MB)

    run(env, workload())
    cache.check_invariants()

    def flush_settle():
        yield env.timeout(60)

    run(env, flush_settle())
    cache.check_invariants()


def test_read_cursor_seek_supports_rereads():
    env = Environment()
    cache, disk = make_cache(env, capacity=64 * MB)

    def workload():
        yield from cache.write("f", 4 * MB)
        first = yield from cache.read("f", 4 * MB)
        cache.seek("f", 0)
        second = yield from cache.read("f", 4 * MB)
        return first, second

    first, second = run(env, workload())
    assert first == 4 * MB
    assert second == 4 * MB
