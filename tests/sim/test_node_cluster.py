"""Node memory partitioning and cluster topology."""

import pytest

from repro.errors import ConfigError
from repro.sim.cluster import ClusterSpec, SimCluster, paper_cluster_spec
from repro.sim.kernel import Environment
from repro.sim.node import NodeSpec
from repro.util.units import GB, MB


class TestNodeSpec:
    def test_paper_defaults(self):
        spec = NodeSpec()
        assert spec.slots == 3  # 2 map + 1 reduce
        assert spec.heap_total == 3 * GB

    def test_cache_gets_leftover_memory(self):
        spec = NodeSpec(memory=16 * GB, sponge_pool=1 * GB)
        expected = 16 * GB - 3 * GB - 512 * MB - 1 * GB
        assert spec.cache_capacity == expected

    def test_sponge_pool_squeezes_cache_to_floor_not_error(self):
        # The paper's 4 GB nodes still configure 1 GB of sponge: the
        # pool only consumes pages as chunks fill.
        spec = NodeSpec(memory=4 * GB, sponge_pool=1 * GB)
        assert spec.cache_capacity == 64 * MB

    def test_hard_overcommit_rejected(self):
        spec = NodeSpec(memory=2 * GB)  # 3 GB of heaps cannot fit
        with pytest.raises(ConfigError):
            _ = spec.cache_capacity

    def test_pinned_memory_shrinks_cache(self):
        free = NodeSpec(memory=16 * GB).cache_capacity
        pressured = NodeSpec(memory=16 * GB, pinned=12 * GB).cache_capacity
        assert pressured < free
        assert pressured >= 64 * MB


class TestClusterSpec:
    def test_paper_cluster_shape(self):
        spec = paper_cluster_spec()
        assert spec.total_nodes == 29
        assert spec.racks == 1

    def test_with_node_override(self):
        spec = ClusterSpec().with_node(memory=8 * GB)
        assert spec.node.memory == 8 * GB
        assert spec.nodes_per_rack == ClusterSpec().nodes_per_rack

    def test_empty_cluster_rejected(self):
        env = Environment()
        with pytest.raises(ConfigError):
            SimCluster(env, ClusterSpec(racks=0))


class TestSimCluster:
    def test_topology_and_lookup(self):
        env = Environment()
        cluster = SimCluster(env, ClusterSpec(racks=2, nodes_per_rack=3))
        assert len(cluster) == 6
        node_id = cluster.node_ids()[0]
        assert cluster.node(node_id).node_id == node_id
        peers = cluster.rack_peers(node_id)
        assert len(peers) == 2
        assert node_id not in peers
        assert all(cluster.node(p).rack == "rack0" for p in peers)

    def test_each_node_has_independent_disk_and_cache(self):
        env = Environment()
        cluster = SimCluster(env, ClusterSpec(racks=1, nodes_per_rack=2))
        first, second = list(cluster)
        assert first.disk is not second.disk
        assert first.cache is not second.cache

    def test_memcpy_charges_time(self):
        env = Environment()
        cluster = SimCluster(env, ClusterSpec(racks=1, nodes_per_rack=1))
        node = next(iter(cluster))

        def op():
            yield from node.memcpy(1 * GB)

        env.run(env.process(op()))
        assert env.now == pytest.approx(1.0)  # 1 GB at 1 GB/s
