"""The exception hierarchy contract: one base, distinct subsystems."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigError,
    errors.SimulationError,
    errors.SimDeadlock,
    errors.ProcessKilled,
    errors.SpongeError,
    errors.OutOfSpongeMemory,
    errors.ChunkAllocationError,
    errors.ChunkLostError,
    errors.SpongeFileStateError,
    errors.QuotaExceededError,
    errors.RuntimeBackendError,
    errors.ProtocolError,
    errors.ServerUnavailableError,
    errors.MapReduceError,
    errors.JobFailedError,
    errors.PigError,
]


@pytest.mark.parametrize("exc_type", ALL_ERRORS)
def test_every_error_derives_from_repro_error(exc_type):
    assert issubclass(exc_type, errors.ReproError)


def test_sponge_errors_grouped(self=None):
    for exc_type in (errors.OutOfSpongeMemory, errors.ChunkLostError,
                     errors.QuotaExceededError,
                     errors.SpongeFileStateError):
        assert issubclass(exc_type, errors.SpongeError)


def test_runtime_errors_grouped():
    assert issubclass(errors.ProtocolError, errors.RuntimeBackendError)
    assert issubclass(errors.ServerUnavailableError,
                      errors.RuntimeBackendError)


def test_subsystems_disjoint():
    assert not issubclass(errors.SpongeError, errors.SimulationError)
    assert not issubclass(errors.MapReduceError, errors.SpongeError)
    assert not issubclass(errors.PigError, errors.MapReduceError)


def test_catching_the_base_catches_everything():
    for exc_type in ALL_ERRORS:
        with pytest.raises(errors.ReproError):
            raise exc_type("boom")
