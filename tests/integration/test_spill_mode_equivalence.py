"""Property: the spill medium must never change a job's *answer*.

Disk spilling and SpongeFile spilling take completely different code
paths (buffer cache vs pools/servers/network, multi-round vs single-
round merges, seek-bound vs streaming bag reads) — but they must be
semantically invisible.  Every macro job is run in both modes at small
scale and the outputs compared exactly.
"""

import pytest

from repro.experiments.common import MacroRunConfig, run_macro
from repro.mapreduce.job import SpillMode
from repro.util.units import GB

SCALE = 0.08
MEMORY_SIZES = [4 * GB, 16 * GB]


def outputs_of(job, mode, memory):
    outcome = run_macro(
        MacroRunConfig(job=job, spill_mode=mode, node_memory=memory,
                       scale=SCALE)
    )
    return sorted(
        (record.key, record.value)
        for record in outcome.result.output_records()
    )


@pytest.mark.parametrize("job", ["median", "frequent-anchortext",
                                 "spam-quantiles"])
@pytest.mark.parametrize("memory", MEMORY_SIZES)
def test_spill_medium_is_semantically_invisible(job, memory):
    disk = outputs_of(job, SpillMode.DISK, memory)
    sponge = outputs_of(job, SpillMode.SPONGE, memory)
    assert disk == sponge
    assert disk  # sanity: the job actually produced output


def test_memory_size_does_not_change_answers():
    small = outputs_of("median", SpillMode.SPONGE, 4 * GB)
    large = outputs_of("median", SpillMode.SPONGE, 16 * GB)
    assert small == large
