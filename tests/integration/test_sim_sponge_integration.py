"""Cross-module integration on the simulator: SpongeFiles under real
cluster dynamics — concurrency, contention, failure injection."""

import pytest

from repro.backends.sim_backends import SimSpongeDeployment
from repro.errors import ChunkLostError
from repro.sim import Environment, SimCluster
from repro.sim.cluster import ClusterSpec
from repro.sim.kernel import AllOf
from repro.sim.node import NodeSpec
from repro.sponge import SimExecutor, SpongeConfig, SpongeFile, TaskId
from repro.sponge.gc import run_cluster_gc
from repro.util.units import GB, MB


def deploy_cluster(nodes=4, sponge_pool=8 * MB, config=None):
    env = Environment()
    spec = ClusterSpec(
        racks=1, nodes_per_rack=nodes,
        node=NodeSpec(memory=16 * GB, sponge_pool=sponge_pool),
    )
    cluster = SimCluster(env, spec)
    deploy = SimSpongeDeployment(env, cluster,
                                 config=config or SpongeConfig())
    return env, cluster, deploy


def spill_task(env, deploy, node_id, label, nbytes, config=None):
    """A task coroutine: write, close, read back, verify, delete."""
    config = config or deploy.config
    owner = TaskId(node_id, label)
    deploy.registry.start(owner)

    def task():
        sf = SpongeFile(owner, deploy.chain(node_id), config,
                        executor=SimExecutor(env), name=label)
        payload = label.encode() * (nbytes // len(label))
        yield from sf.write(payload)
        yield from sf.close()
        reader = sf.open_reader()
        parts = []
        while True:
            chunk = yield from reader.next_chunk()
            if chunk is None:
                break
            parts.append(chunk)
        assert b"".join(parts) == payload
        yield from sf.delete()
        deploy.registry.finish(owner)
        return env.now

    return env.process(task())


class TestConcurrentSpilling:
    def test_many_tasks_share_the_sponge(self):
        env, cluster, deploy = deploy_cluster(nodes=4, sponge_pool=8 * MB)
        nodes = cluster.node_ids()
        procs = [
            spill_task(env, deploy, nodes[i % 4], f"task{i}", 6 * MB)
            for i in range(8)
        ]
        env.run(AllOf(env, procs))
        assert deploy.total_sponge_bytes_used() == 0

    def test_contention_slows_spills(self):
        """Tasks spilling to the same remote server share its NIC."""

        def run_with(count):
            env, cluster, deploy = deploy_cluster(nodes=2,
                                                  sponge_pool=64 * MB)
            source = cluster.node_ids()[0]
            # Drain the local pool so every chunk crosses the network.
            pool = deploy.pools[source]
            hog = TaskId(source, "hog")
            while pool.free_chunks:
                pool.store(pool.allocate(hog), hog, b"")
            deploy.tracker.poll_once()
            procs = [
                spill_task(env, deploy, source, f"t{i}", 8 * MB)
                for i in range(count)
            ]
            times = env.run(AllOf(env, procs))
            return max(times)

        solo_time = run_with(1)
        contended_time = run_with(4)
        assert contended_time > 1.5 * solo_time

    def test_pool_pressure_overflows_to_disk_not_deadlock(self):
        config = SpongeConfig()
        env, cluster, deploy = deploy_cluster(nodes=2, sponge_pool=2 * MB,
                                              config=config)
        nodes = cluster.node_ids()
        procs = [
            spill_task(env, deploy, nodes[i % 2], f"big{i}", 16 * MB)
            for i in range(3)
        ]
        env.run(AllOf(env, procs))  # would deadlock/fail if stuck


class TestFailureInjection:
    def test_lost_chunk_fails_the_read(self):
        env, cluster, deploy = deploy_cluster(nodes=2, sponge_pool=8 * MB)
        node_id = cluster.node_ids()[0]
        owner = TaskId(node_id, "victim")

        def task():
            sf = SpongeFile(owner, deploy.chain(node_id), deploy.config,
                            executor=SimExecutor(env))
            yield from sf.write(b"x" * (4 * MB))
            yield from sf.close()
            # A "node failure": its pool chunks vanish.
            pool = deploy.pools[node_id]
            pool.collect(lambda o: False)
            reader = sf.open_reader()
            with pytest.raises(ChunkLostError):
                while True:
                    chunk = yield from reader.next_chunk()
                    if chunk is None:
                        break
            return True

        assert env.run(env.process(task()))

    def test_gc_reclaims_after_simulated_task_death(self):
        env, cluster, deploy = deploy_cluster(nodes=3, sponge_pool=4 * MB)
        node_id = cluster.node_ids()[0]
        owner = TaskId(node_id, "doomed")
        deploy.registry.start(owner)

        def task():
            sf = SpongeFile(owner, deploy.chain(node_id), deploy.config,
                            executor=SimExecutor(env))
            yield from sf.write(b"y" * (8 * MB))  # spans local + remote
            yield from sf.close()
            # dies here: no delete

        env.run(env.process(task()))
        used_before = deploy.total_sponge_bytes_used()
        assert used_before > 0
        deploy.registry.finish(owner)  # the task is now dead
        report = run_cluster_gc(list(deploy.servers.values()))
        assert report.chunks_freed == used_before // (1 * MB)
        assert deploy.total_sponge_bytes_used() == 0


class TestTrackerDynamics:
    def test_periodic_polling_refreshes_free_list(self):
        env, cluster, deploy = deploy_cluster(nodes=2, sponge_pool=4 * MB)
        node_id = cluster.node_ids()[1]
        pool = deploy.pools[node_id]
        hog = TaskId(node_id, "hog")
        while pool.free_chunks:
            pool.store(pool.allocate(hog), hog, b"")
        # Immediately the tracker still believes the node has space.
        stale = [i.host for i in deploy.tracker.free_list()]
        assert node_id in stale
        env.run(until=deploy.config.tracker_poll_interval * 2.5)
        fresh = [i.host for i in deploy.tracker.free_list()]
        assert node_id not in fresh
