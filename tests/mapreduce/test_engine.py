"""End-to-end engine tests: correctness, scheduling, spilling, failure."""

import pytest

from repro.backends.sim_backends import SimSpongeDeployment
from repro.errors import JobFailedError, MapReduceError
from repro.mapreduce import Hadoop, JobConf, Record, SpillMode
from repro.sim.cluster import ClusterSpec, SimCluster
from repro.sim.kernel import Environment
from repro.sim.node import NodeSpec
from repro.util.units import GB, MB


def make_hadoop(nodes=4, sponge=False, heap=1 * GB):
    env = Environment()
    spec = ClusterSpec(
        racks=1, nodes_per_rack=nodes,
        node=NodeSpec(memory=16 * GB, sponge_pool=(1 * GB if sponge else 0)),
    )
    cluster = SimCluster(env, spec)
    deploy = SimSpongeDeployment(env, cluster) if sponge else None
    return env, cluster, Hadoop(env, cluster, sponge=deploy)


def word_records(words, nbytes=1 * MB):
    return [Record(None, w, nbytes) for w in words]


def wc_map(record):
    yield Record(record.value, 1, record.nbytes)


def wc_reduce(key, values, ctx):
    yield Record(key, sum(v.value for v in values), 16)


def wc_conf(**kwargs):
    defaults = dict(
        name="wc", input_file="input", map_fn=wc_map, reduce_fn=wc_reduce,
        num_reducers=2,
    )
    defaults.update(kwargs)
    return JobConf(**defaults)


class TestCorrectness:
    @pytest.mark.parametrize("sponge", [False, True])
    def test_word_count(self, sponge):
        env, cluster, hadoop = make_hadoop(sponge=sponge)
        hadoop.load_records("input", word_records(["a", "b", "a"] * 40))
        mode = SpillMode.SPONGE if sponge else SpillMode.DISK
        result = hadoop.run_job(wc_conf(spill_mode=mode))
        counts = {r.key: r.value for r in result.output_records()}
        assert counts == {"a": 80, "b": 40}

    def test_output_is_key_grouped_once(self):
        """Each key reaches exactly one reduce call."""
        env, cluster, hadoop = make_hadoop()
        hadoop.load_records("input", word_records(list("abcabcabc")))
        calls = []

        def spy_reduce(key, values, ctx):
            calls.append(key)
            return wc_reduce(key, values, ctx)

        result = hadoop.run_job(wc_conf(reduce_fn=spy_reduce))
        assert sorted(calls) == ["a", "b", "c"]
        assert {r.value for r in result.output_records()} == {3}

    def test_map_only_job(self):
        env, cluster, hadoop = make_hadoop()
        hadoop.hdfs.create_opaque("corpus", 512 * MB)
        seen = {"count": 0}

        def count_map(record):
            seen["count"] += 1
            return ()

        conf = JobConf(name="scan", input_file="corpus", map_fn=count_map,
                       num_reducers=0)
        result = hadoop.run_job(conf)
        assert result.outputs == {}
        assert len(result.counters.maps) == 4  # 512 MB / 128 MB blocks

    def test_empty_input(self):
        env, cluster, hadoop = make_hadoop()
        hadoop.load_records("input", [])
        result = hadoop.run_job(wc_conf())
        assert result.output_records() == []


class TestSpillBehaviour:
    def test_large_reduce_input_spills(self):
        env, cluster, hadoop = make_hadoop(sponge=True)
        # 3 GB into one reducer with a 1 GB heap: must spill.
        hadoop.load_records(
            "input", word_records(["k"] * 3072, nbytes=1 * MB)
        )
        conf = wc_conf(num_reducers=1, spill_mode=SpillMode.SPONGE)
        result = hadoop.run_job(conf)
        straggler = result.counters.straggler()
        assert straggler.spilled_bytes >= 2 * GB
        assert straggler.spilled_chunks > 1000

    def test_small_reduce_input_stays_in_memory(self):
        env, cluster, hadoop = make_hadoop()
        hadoop.load_records("input", word_records(["k"] * 16, nbytes=4 * MB))
        result = hadoop.run_job(wc_conf(num_reducers=1))
        straggler = result.counters.straggler()
        # 64 MB < 700 MB shuffle buffer, but retain fraction 0 means one
        # re-spill of the merged inputs (§2.1.2's default behaviour).
        assert straggler.spill_events == 1

    def test_retain_fraction_one_avoids_spilling(self):
        env, cluster, hadoop = make_hadoop()
        hadoop.load_records("input", word_records(["k"] * 16, nbytes=4 * MB))
        result = hadoop.run_job(
            wc_conf(num_reducers=1, reduce_retain_fraction=1.0)
        )
        assert result.counters.straggler().spilled_bytes == 0

    def test_map_side_sort_buffer_spills(self):
        env, cluster, hadoop = make_hadoop()
        hadoop.load_records("input", word_records(["k"] * 8, nbytes=32 * MB))

        def expand_map(record):
            # Map output (3x input) overflows a small sort buffer.
            for i in range(3):
                yield Record(f"{record.value}-{i}", 1, record.nbytes)

        conf = wc_conf(map_fn=expand_map, sort_buffer=64 * MB)
        result = hadoop.run_job(conf)
        assert any(m.spill_events > 0 for m in result.counters.maps)
        assert sum(len(r) for r in result.outputs.values()) == 3

    def test_sponge_mode_without_deployment_rejected(self):
        env, cluster, hadoop = make_hadoop(sponge=False)
        hadoop.load_records("input", word_records(["a"]))
        with pytest.raises(MapReduceError):
            hadoop.submit(wc_conf(spill_mode=SpillMode.SPONGE))


class TestScheduling:
    def test_map_locality_preferred(self):
        env, cluster, hadoop = make_hadoop(nodes=4)
        hadoop.load_records("input", word_records(["w"] * 32, nbytes=16 * MB))
        result = hadoop.run_job(wc_conf())
        blocks = {b.block_id: b.node_id
                  for b in hadoop.hdfs.open("input").blocks}
        local = sum(
            1 for m in result.counters.maps if m.node_id in blocks.values()
        )
        assert local == len(result.counters.maps)

    def test_slots_bound_concurrency(self):
        env, cluster, hadoop = make_hadoop(nodes=2)
        hadoop.load_records("input", word_records(["w"] * 64, nbytes=16 * MB))
        result = hadoop.run_job(wc_conf())
        # 8 blocks, 2 nodes x 2 map slots: at least two map waves.
        starts = sorted(m.started for m in result.counters.maps)
        assert starts[-1] > starts[0]

    def test_background_job_uses_leftover_slots(self):
        env, cluster, hadoop = make_hadoop(nodes=3)
        hadoop.load_records("input", word_records(["w"] * 12, nbytes=16 * MB))
        hadoop.hdfs.create_opaque("corpus", 4 * GB)
        foreground = hadoop.submit(wc_conf())
        grep = JobConf(name="grep", input_file="corpus",
                       map_fn=lambda r: (), num_reducers=0)
        background = hadoop.submit(grep)
        env.run(foreground.done)
        assert background.completed_maps > 0
        assert not background.finished  # still grinding when fg is done

    def test_two_foreground_jobs_fifo(self):
        env, cluster, hadoop = make_hadoop(nodes=2)
        hadoop.load_records("first", word_records(["x"] * 8, nbytes=16 * MB))
        hadoop.load_records("second", word_records(["y"] * 8, nbytes=16 * MB))
        job1 = hadoop.submit(wc_conf(name="one", input_file="first"))
        job2 = hadoop.submit(wc_conf(name="two", input_file="second"))
        result2 = env.run(job2.done)
        assert job1.done.triggered
        assert env.run(job1.done).runtime <= result2.runtime


class TestFailurePropagation:
    def test_map_exception_fails_job(self):
        env, cluster, hadoop = make_hadoop()
        hadoop.load_records("input", word_records(["a", "b"]))

        def broken_map(record):
            raise ValueError("user code bug")

        job = hadoop.submit(wc_conf(map_fn=broken_map))
        with pytest.raises(JobFailedError):
            env.run(job.done)

    def test_reduce_exception_fails_job(self):
        env, cluster, hadoop = make_hadoop()
        hadoop.load_records("input", word_records(["a", "b"]))

        def broken_reduce(key, values, ctx):
            raise RuntimeError("reducer bug")

        job = hadoop.submit(wc_conf(reduce_fn=broken_reduce))
        with pytest.raises(JobFailedError):
            env.run(job.done)

    def test_failed_job_releases_slots(self):
        env, cluster, hadoop = make_hadoop()
        hadoop.load_records("input", word_records(["a"]))
        hadoop.load_records("input2", word_records(["b"] * 4))

        def broken_map(record):
            raise ValueError("boom")

        bad = hadoop.submit(wc_conf(map_fn=broken_map))
        with pytest.raises(JobFailedError):
            env.run(bad.done)
        good = hadoop.submit(wc_conf(name="good", input_file="input2"))
        result = env.run(good.done)
        assert {r.key for r in result.output_records()} == {"b"}
