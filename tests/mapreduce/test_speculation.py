"""Speculative execution: helps slow nodes, cannot fix data skew."""

import pytest

from repro.backends.sim_backends import SimSpongeDeployment
from repro.mapreduce import Hadoop, JobConf, Record, SpillMode
from repro.sim import Environment, SimCluster
from repro.sim.cluster import ClusterSpec
from repro.sim.node import NodeSpec
from repro.util.units import GB, MB


def make_hadoop(nodes=6, slow_node_factor=None, sponge=False,
                memory=4 * GB):
    env = Environment()
    spec = ClusterSpec(
        racks=1, nodes_per_rack=nodes,
        node=NodeSpec(memory=memory,
                      sponge_pool=(1 * GB if sponge else 0)),
    )
    cluster = SimCluster(env, spec)
    victim = cluster.node_ids()[0]
    if slow_node_factor:
        # Degrade one machine's disk (a failing spindle).
        node = cluster.node(victim)
        node.disk.seq_bandwidth /= slow_node_factor
    deploy = SimSpongeDeployment(env, cluster) if sponge else None
    return env, cluster, Hadoop(env, cluster, sponge=deploy), victim


def uniform_job(hadoop, victim, reducers=5, speculative=False,
                records_per_key=175):
    words = [f"w{i % reducers}" for i in range(reducers * records_per_key)]
    hadoop.load_records(
        "in", [Record(None, w, 4 * MB) for w in words]
    )
    # Keep the victim's degraded disk off the map path, so the slow
    # node only matters for the reduce that lands on it.
    healthy = [b.node_id for b in hadoop.hdfs.open("in").blocks
               if b.node_id != victim]
    for block in hadoop.hdfs.open("in").blocks:
        if block.node_id == victim:
            block.node_id = healthy[0]

    def map_fn(record):
        yield Record(record.value, 1, record.nbytes)

    def reduce_fn(key, values, ctx):
        yield Record(key, len(values), 16)

    return JobConf(
        name="uniform", input_file="in", map_fn=map_fn,
        reduce_fn=reduce_fn, num_reducers=reducers,
        partitioner=lambda key, n: int(key[1:]) % n,
        speculative_execution=speculative,
    )


class TestSlowNode:
    def run_once(self, speculative):
        env, cluster, hadoop, victim = make_hadoop(slow_node_factor=16)
        result = hadoop.run_job(
            uniform_job(hadoop, victim, speculative=speculative)
        )
        counts = {r.key: r.value for r in result.output_records()}
        assert set(counts.values()) == {175}
        return result

    def test_backup_attempt_rescues_the_job(self):
        baseline = self.run_once(speculative=False)
        speculated = self.run_once(speculative=True)
        assert speculated.runtime < 0.7 * baseline.runtime

    def test_backup_recorded_in_counters(self):
        result = self.run_once(speculative=True)
        attempts = [t.task_id for t in result.counters.reduces]
        assert any(t.endswith("-spec") for t in attempts)

    def test_results_identical_with_speculation(self):
        baseline = self.run_once(speculative=False)
        speculated = self.run_once(speculative=True)
        as_dict = lambda r: {o.key: o.value for o in r.output_records()}
        assert as_dict(baseline) == as_dict(speculated)


class TestDataSkew:
    """The paper's footnote 4: speculation does not address skew —
    the backup attempt inherits the same giant input."""

    def run_once(self, speculative):
        env, cluster, hadoop, victim = make_hadoop(nodes=6)
        # All records share one key: a single skewed reduce.
        hadoop.load_records(
            "in", [Record(None, "hot", 4 * MB) for _ in range(300)]
        )

        def map_fn(record):
            yield Record(record.value, 1, record.nbytes)

        def reduce_fn(key, values, ctx):
            yield Record(key, len(values), 16)

        conf = JobConf(
            name="skewed", input_file="in", map_fn=map_fn,
            reduce_fn=reduce_fn, num_reducers=1,
            speculative_execution=speculative,
        )
        return hadoop.run_job(conf)

    def test_speculation_does_not_fix_skew(self):
        baseline = self.run_once(speculative=False)
        speculated = self.run_once(speculative=True)
        # At best a few percent of noise — never a rescue.
        assert speculated.runtime > 0.9 * baseline.runtime

    def test_sponge_cleanup_after_losing_attempt(self):
        env, cluster, hadoop, victim = make_hadoop(
            nodes=6, slow_node_factor=16, sponge=True
        )
        conf = uniform_job(hadoop, victim, speculative=True)
        conf = JobConf(
            name=conf.name, input_file=conf.input_file, map_fn=conf.map_fn,
            reduce_fn=conf.reduce_fn, num_reducers=conf.num_reducers,
            speculative_execution=True, spill_mode=SpillMode.SPONGE,
        )
        hadoop.run_job(conf)
        # Losing attempts' chunks were garbage-collected.
        assert hadoop.sponge.total_sponge_bytes_used() == 0
