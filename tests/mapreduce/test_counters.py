"""Task/job counters and the straggler accounting behind Table 2."""

from repro.mapreduce.counters import JobCounters, TaskCounters
from repro.util.units import MB


class TestTaskCounters:
    def test_runtime(self):
        task = TaskCounters(started=10.0, finished=25.5)
        assert task.runtime == 15.5

    def test_runtime_none_while_unfinished(self):
        # ``finished`` stays 0.0 until completion; the old code returned
        # started-finished as a huge negative runtime for live tasks.
        assert TaskCounters(started=10.0).runtime is None
        assert TaskCounters().runtime is None

    def test_fragmentation_zero_without_chunks(self):
        assert TaskCounters().chunk_fragmentation(1 * MB) == 0.0

    def test_fragmentation_math(self):
        task = TaskCounters(spilled_bytes=3 * MB, spilled_chunks=4)
        assert task.chunk_fragmentation(1 * MB) == 0.25

    def test_fragmentation_never_negative(self):
        # Oversize chunks can make spilled bytes exceed chunks x size.
        task = TaskCounters(spilled_bytes=10 * MB, spilled_chunks=2)
        assert task.chunk_fragmentation(1 * MB) == 0.0


class TestJobCounters:
    def make(self):
        job = JobCounters(job_name="j")
        job.add(TaskCounters(task_id="m0", is_map=True, spilled_bytes=5))
        job.add(TaskCounters(task_id="r0", is_map=False, input_bytes=100,
                             spilled_bytes=10, spilled_chunks=2,
                             started=0, finished=50))
        job.add(TaskCounters(task_id="r1", is_map=False, input_bytes=900,
                             spilled_bytes=30, spilled_chunks=5,
                             started=0, finished=200))
        return job

    def test_maps_and_reduces_separated(self):
        job = self.make()
        assert len(job.maps) == 1
        assert len(job.reduces) == 2

    def test_totals(self):
        job = self.make()
        assert job.total_spilled_bytes == 45
        assert job.total_spilled_chunks == 7

    def test_straggler_is_biggest_input_reduce(self):
        assert self.make().straggler().task_id == "r1"

    def test_straggler_none_for_map_only(self):
        job = JobCounters()
        job.add(TaskCounters(is_map=True))
        assert job.straggler() is None

    def test_task_runtimes(self):
        job = self.make()
        assert job.task_runtimes(maps=False) == [50, 200]

    def test_task_runtimes_skip_unfinished(self):
        job = self.make()
        job.add(TaskCounters(task_id="r2", is_map=False, started=100.0))
        assert job.task_runtimes(maps=False) == [50, 200]

    def test_straggler_skips_unfinished_attempts(self):
        # A cancelled speculative attempt with the biggest partial input
        # must not win the straggler slot.
        job = self.make()
        job.add(TaskCounters(task_id="r9", is_map=False, input_bytes=9999,
                             started=10.0))
        assert job.straggler().task_id == "r1"

    def test_straggler_none_when_nothing_finished(self):
        job = JobCounters()
        job.add(TaskCounters(task_id="r0", is_map=False, input_bytes=5,
                             started=1.0))
        assert job.straggler() is None
