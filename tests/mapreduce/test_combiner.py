"""Map-side combiners (the algebraic-aggregate path of §2.2)."""

import pytest

from repro.mapreduce import Hadoop, JobConf, Record
from repro.sim import Environment, SimCluster
from repro.sim.cluster import ClusterSpec
from repro.util.units import MB


def make_hadoop(nodes=4):
    env = Environment()
    cluster = SimCluster(env, ClusterSpec(racks=1, nodes_per_rack=nodes))
    return Hadoop(env, cluster)


def count_map(record):
    yield Record(record.value, 1, record.nbytes)


def count_combine(key, records):
    yield Record(key, sum(r.value for r in records), 16)


def count_reduce(key, values, ctx):
    yield Record(key, sum(v.value for v in values), 16)


def conf(**kwargs):
    defaults = dict(name="wc", input_file="in", map_fn=count_map,
                    reduce_fn=count_reduce, num_reducers=2)
    defaults.update(kwargs)
    return JobConf(**defaults)


def load(hadoop, words, nbytes=1 * MB):
    hadoop.load_records("in", [Record(None, w, nbytes) for w in words])


class TestCombiner:
    def test_results_identical_with_and_without(self):
        words = ["a", "b", "a", "c"] * 30
        with_combiner = make_hadoop()
        load(with_combiner, words)
        combined = with_combiner.run_job(conf(combiner_fn=count_combine))

        without = make_hadoop()
        load(without, words)
        plain = without.run_job(conf())

        as_dict = lambda res: {r.key: r.value for r in res.output_records()}
        assert as_dict(combined) == as_dict(plain) == {"a": 60, "b": 30,
                                                       "c": 30}

    def test_combiner_shrinks_shuffle(self):
        words = ["hot"] * 200
        with_combiner = make_hadoop()
        load(with_combiner, words)
        combined = with_combiner.run_job(
            conf(num_reducers=1, combiner_fn=count_combine)
        )
        without = make_hadoop()
        load(without, words)
        plain = without.run_job(conf(num_reducers=1))
        combined_in = combined.counters.straggler().input_bytes
        plain_in = plain.counters.straggler().input_bytes
        assert combined_in < plain_in / 50

    def test_combiner_applied_per_partition(self):
        """Keys in different partitions never get merged together."""
        words = [f"w{i}" for i in range(8)] * 10
        hadoop = make_hadoop()
        load(hadoop, words)
        result = hadoop.run_job(conf(num_reducers=4,
                                     combiner_fn=count_combine))
        counts = {r.key: r.value for r in result.output_records()}
        assert counts == {f"w{i}": 10 for i in range(8)}
