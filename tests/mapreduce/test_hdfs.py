import pytest

from repro.errors import MapReduceError
from repro.mapreduce.hdfs import MiniHdfs
from repro.mapreduce.types import Record
from repro.sim.cluster import ClusterSpec, SimCluster
from repro.sim.kernel import Environment
from repro.util.units import MB


def make_hdfs(nodes=4, block_size=4 * MB):
    env = Environment()
    cluster = SimCluster(env, ClusterSpec(racks=1, nodes_per_rack=nodes))
    return env, cluster, MiniHdfs(cluster, block_size=block_size)


def records(count, nbytes=1 * MB):
    return [Record(None, i, nbytes) for i in range(count)]


class TestBlockLayout:
    def test_blocks_cut_at_block_size(self):
        env, cluster, hdfs = make_hdfs(block_size=4 * MB)
        hdfs_file = hdfs.create("f", records(10))
        assert len(hdfs_file.blocks) == 3  # 4+4+2 MB
        assert hdfs_file.blocks[0].nbytes == 4 * MB
        assert hdfs_file.nbytes == 10 * MB

    def test_round_robin_placement(self):
        env, cluster, hdfs = make_hdfs(nodes=4)
        hdfs_file = hdfs.create("f", records(16))
        hosts = [block.node_id for block in hdfs_file.blocks]
        assert len(set(hosts)) == 4

    def test_empty_file_gets_one_block(self):
        env, cluster, hdfs = make_hdfs()
        hdfs_file = hdfs.create("empty", [])
        assert len(hdfs_file.blocks) == 1
        assert hdfs_file.nbytes == 0

    def test_duplicate_name_rejected(self):
        env, cluster, hdfs = make_hdfs()
        hdfs.create("f", records(1))
        with pytest.raises(MapReduceError):
            hdfs.create("f", records(1))

    def test_open_missing_rejected(self):
        env, cluster, hdfs = make_hdfs()
        with pytest.raises(MapReduceError):
            hdfs.open("nope")

    def test_records_roundtrip(self):
        env, cluster, hdfs = make_hdfs()
        hdfs.create("f", records(9))
        assert [r.value for r in hdfs.iter_records("f")] == list(range(9))


class TestOpaqueFiles:
    def test_opaque_sizes(self):
        env, cluster, hdfs = make_hdfs(block_size=4 * MB)
        hdfs_file = hdfs.create_opaque("big", 10 * MB)
        assert hdfs_file.nbytes == 10 * MB
        assert all(not b.records for b in hdfs_file.blocks)


class TestReads:
    def test_local_read_charges_host_disk(self):
        env, cluster, hdfs = make_hdfs()
        hdfs_file = hdfs.create("f", records(4))
        block = hdfs_file.blocks[0]

        def reader():
            got = yield from hdfs.read_block(block, block.node_id)
            return got

        got = env.run(env.process(reader()))
        assert got == block.records
        assert cluster.node(block.node_id).disk.stats.bytes_read >= block.nbytes

    def test_remote_read_crosses_network(self):
        env, cluster, hdfs = make_hdfs()
        hdfs_file = hdfs.create("f", records(4))
        block = hdfs_file.blocks[0]
        other = next(
            n for n in cluster.node_ids() if n != block.node_id
        )

        def reader():
            yield from hdfs.read_block(block, other)

        env.run(env.process(reader()))
        assert cluster.network.stats.bytes_transferred >= block.nbytes

    def test_stream_block_interleaves_cpu(self):
        env, cluster, hdfs = make_hdfs()
        hdfs_file = hdfs.create("f", records(4))
        block = hdfs_file.blocks[0]

        def reader():
            got = yield from hdfs.stream_block(
                block, block.node_id, cpu_bps=1 * MB
            )
            return got

        got = env.run(env.process(reader()))
        assert got == block.records
        # CPU time alone: 4 MB at 1 MB/s -> at least 4 simulated seconds.
        assert env.now >= 4.0

    def test_second_read_hits_cache(self):
        env, cluster, hdfs = make_hdfs()
        hdfs_file = hdfs.create("f", records(4))
        block = hdfs_file.blocks[0]
        node = cluster.node(block.node_id)

        def reader():
            yield from hdfs.read_block(block, block.node_id)
            before = node.disk.stats.bytes_read
            yield from hdfs.read_block(block, block.node_id)
            return before

        before = env.run(env.process(reader()))
        assert node.disk.stats.bytes_read == before  # all cached
