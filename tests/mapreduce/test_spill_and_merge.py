"""Spill targets and the k-way merge policies."""

import pytest

from repro.backends.sim_backends import SimSpongeDeployment
from repro.mapreduce.counters import TaskCounters
from repro.mapreduce.merge import (
    merge_runs,
    merge_sorted_records,
    plan_merge_rounds,
)
from repro.mapreduce.spill import (
    DiskSpillTarget,
    MaterializedRun,
    SpongeSpillTarget,
)
from repro.mapreduce.types import Record
from repro.sim.cluster import ClusterSpec, SimCluster
from repro.sim.kernel import Environment
from repro.sim.node import NodeSpec
from repro.sponge.chunk import TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.spongefile import SimExecutor
from repro.util.units import GB, MB


def rec(key, nbytes=1 * MB):
    return Record(key, None, nbytes)


def sorted_run_records(start, count):
    return [rec(start + i) for i in range(count)]


def build_env(sponge=False, memory=16 * GB):
    env = Environment()
    spec = ClusterSpec(
        racks=1, nodes_per_rack=3,
        node=NodeSpec(memory=memory, sponge_pool=(1 * GB if sponge else 0)),
    )
    cluster = SimCluster(env, spec)
    deploy = SimSpongeDeployment(env, cluster) if sponge else None
    return env, cluster, deploy


def disk_target(env, cluster, counters=None):
    node = next(iter(cluster))
    return DiskSpillTarget(node, "task-0", counters)


def sponge_target(env, cluster, deploy, counters=None):
    node_id = cluster.node_ids()[0]
    owner = TaskId(node_id, "task-0")
    return SpongeSpillTarget(
        deploy.chain(node_id), owner, deploy.config, SimExecutor(env),
        counters=counters,
    )


def write_run(env, target, records, label="run"):
    def op():
        run = target.new_run(label)
        yield from run.write(records)
        yield from run.close()
        return run

    return env.run(env.process(op()))


class TestSpillRuns:
    @pytest.mark.parametrize("sponge", [False, True])
    def test_roundtrip(self, sponge):
        env, cluster, deploy = build_env(sponge=sponge)
        counters = TaskCounters()
        target = (
            sponge_target(env, cluster, deploy, counters)
            if sponge
            else disk_target(env, cluster, counters)
        )
        records = sorted_run_records(0, 8)
        run = write_run(env, target, records)
        assert run.nbytes == 8 * MB
        assert counters.spilled_bytes == 8 * MB

        def read():
            got = yield from run.read_all()
            return got

        assert env.run(env.process(read())) == records

    def test_sponge_target_counts_chunks(self):
        env, cluster, deploy = build_env(sponge=True)
        target = sponge_target(env, cluster, deploy)
        write_run(env, target, sorted_run_records(0, 5))
        assert target.chunks_spilled() == 5

    def test_disk_target_reports_zero_chunks(self):
        env, cluster, deploy = build_env()
        target = disk_target(env, cluster)
        write_run(env, target, sorted_run_records(0, 3))
        assert target.chunks_spilled() == 0

    def test_seek_bound_flags(self):
        env, cluster, deploy = build_env(sponge=True)
        assert disk_target(env, cluster).seek_bound_merges is True
        assert sponge_target(env, cluster, deploy).seek_bound_merges is False

    def test_materialized_run_is_free(self):
        env, cluster, deploy = build_env()
        run = MaterializedRun(sorted_run_records(0, 4))
        assert run.nbytes == 4 * MB
        assert run.records_nocharge() == sorted_run_records(0, 4)


class TestMergePolicy:
    def test_plan_merge_rounds(self):
        assert plan_merge_rounds(5, 10) == 0
        assert plan_merge_rounds(11, 10) == 1
        assert plan_merge_rounds(28, 10) == 2
        assert plan_merge_rounds(100, 10) == 10

    def test_pure_merge_orders_by_key(self):
        runs = [sorted_run_records(0, 3), sorted_run_records(1, 3)]
        merged = merge_sorted_records(runs)
        assert [r.key for r in merged] == sorted(r.key for run in runs for r in run)

    def test_custom_sort_key(self):
        runs = [[rec((1, "b")), rec((3, "a"))], [rec((2, "c"))]]
        merged = merge_sorted_records(runs, key=lambda r: r.key[0])
        assert [r.key[0] for r in merged] == [1, 2, 3]

    def _merge(self, env, runs, target, counters, factor=3):
        def op():
            merged = yield from merge_runs(
                env, runs, target, io_sort_factor=factor,
                merge_cpu_bps=1 * GB, counters=counters,
            )
            return merged

        return env.run(env.process(op()))

    def test_disk_merge_respills_in_rounds(self):
        env, cluster, deploy = build_env()
        counters = TaskCounters()
        target = disk_target(env, cluster, counters)
        runs = [
            write_run(env, target, sorted_run_records(i, 4), f"r{i}")
            for i in range(5)
        ]
        spilled_before = counters.spilled_bytes
        merged = self._merge(env, runs, target, counters, factor=3)
        assert len(merged) == 20
        assert [r.key for r in merged] == sorted(r.key for r in merged)
        # 5 runs > factor 3: one intermediate round re-spilled bytes.
        assert counters.merge_rounds == 2
        assert counters.spilled_bytes > spilled_before

    def test_sponge_merge_single_round_no_respill(self):
        env, cluster, deploy = build_env(sponge=True)
        counters = TaskCounters()
        target = sponge_target(env, cluster, deploy, counters)
        runs = [
            write_run(env, target, sorted_run_records(i, 4), f"r{i}")
            for i in range(5)
        ]
        spilled_before = counters.spilled_bytes
        merged = self._merge(env, runs, target, counters, factor=3)
        assert len(merged) == 20
        assert counters.merge_rounds == 1
        assert counters.spilled_bytes == spilled_before  # no re-spill

    def test_merge_deletes_inputs_by_default(self):
        env, cluster, deploy = build_env(sponge=True)
        target = sponge_target(env, cluster, deploy)
        runs = [write_run(env, target, sorted_run_records(i, 2))
                for i in range(2)]
        self._merge(env, runs, target, TaskCounters())
        assert deploy.total_sponge_bytes_used() == 0

    def test_merge_keeps_inputs_when_asked(self):
        env, cluster, deploy = build_env(sponge=True)
        target = sponge_target(env, cluster, deploy)
        runs = [write_run(env, target, sorted_run_records(i, 2))
                for i in range(2)]

        def op():
            merged = yield from merge_runs(
                env, runs, target, io_sort_factor=10,
                merge_cpu_bps=1 * GB, delete_inputs=False,
            )
            return merged

        env.run(env.process(op()))
        assert deploy.total_sponge_bytes_used() > 0

    def test_empty_runs_merge_to_empty(self):
        env, cluster, deploy = build_env()
        target = disk_target(env, cluster)
        assert self._merge(env, [], target, TaskCounters()) == []
