import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mapreduce.job import JobConf, SpillMode
from repro.mapreduce.types import (
    Record,
    default_partitioner,
    records_nbytes,
    sort_records,
)


def rec(key, nbytes=10):
    return Record(key=key, value=None, nbytes=nbytes)


class TestRecord:
    def test_with_key_keeps_value_and_size(self):
        record = Record("a", {"payload": 1}, 123)
        rekeyed = record.with_key("b")
        assert rekeyed.key == "b"
        assert rekeyed.value == {"payload": 1}
        assert rekeyed.nbytes == 123

    def test_records_nbytes_sums(self):
        assert records_nbytes([rec("a", 5), rec("b", 7)]) == 12
        assert records_nbytes([]) == 0

    def test_sort_is_stable(self):
        records = [Record("k", i, 1) for i in range(5)]
        assert [r.value for r in sort_records(records)] == list(range(5))

    @given(st.lists(st.integers(), max_size=50))
    def test_sort_orders_keys(self, keys):
        sorted_keys = [r.key for r in sort_records([rec(k) for k in keys])]
        assert sorted_keys == sorted(keys)


class TestPartitioner:
    def test_in_range(self):
        for key in ["a", 42, ("x", 1)]:
            assert 0 <= default_partitioner(key, 7) < 7

    def test_single_partition(self):
        assert default_partitioner("anything", 1) == 0


class TestJobConf:
    def base(self, **kwargs):
        defaults = dict(
            name="job",
            input_file="f",
            map_fn=lambda r: [r],
            reduce_fn=lambda k, v, c: [],
        )
        defaults.update(kwargs)
        return JobConf(**defaults)

    def test_defaults_match_hadoop(self):
        conf = self.base()
        assert conf.io_sort_factor == 10
        assert conf.shuffle_merge_fraction == 0.70
        assert conf.reduce_retain_fraction == 0.0
        assert conf.spill_mode is SpillMode.DISK

    def test_shuffle_buffer_is_fraction_of_heap(self):
        conf = self.base(heap_size=1000, shuffle_merge_fraction=0.7)
        assert conf.shuffle_buffer_bytes == 700

    def test_reducers_without_reduce_fn_rejected(self):
        with pytest.raises(ConfigError):
            JobConf(name="j", input_file="f", map_fn=lambda r: [r])

    def test_map_only_job_allowed(self):
        conf = self.base(reduce_fn=None, num_reducers=0)
        assert conf.num_reducers == 0

    def test_bad_sort_factor_rejected(self):
        with pytest.raises(ConfigError):
            self.base(io_sort_factor=1)

    def test_negative_reducers_rejected(self):
        with pytest.raises(ConfigError):
            self.base(num_reducers=-1)
