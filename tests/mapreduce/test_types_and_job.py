import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mapreduce.job import JobConf, SpillMode
from repro.mapreduce import types as mr_types
from repro.mapreduce.types import (
    Record,
    default_partitioner,
    records_nbytes,
    sort_records,
)


def rec(key, nbytes=10):
    return Record(key=key, value=None, nbytes=nbytes)


class TestRecord:
    def test_with_key_keeps_value_and_size(self):
        record = Record("a", {"payload": 1}, 123)
        rekeyed = record.with_key("b")
        assert rekeyed.key == "b"
        assert rekeyed.value == {"payload": 1}
        assert rekeyed.nbytes == 123

    def test_records_nbytes_sums(self):
        assert records_nbytes([rec("a", 5), rec("b", 7)]) == 12
        assert records_nbytes([]) == 0

    def test_sort_is_stable(self):
        records = [Record("k", i, 1) for i in range(5)]
        assert [r.value for r in sort_records(records)] == list(range(5))

    @given(st.lists(st.integers(), max_size=50))
    def test_sort_orders_keys(self, keys):
        sorted_keys = [r.key for r in sort_records([rec(k) for k in keys])]
        assert sorted_keys == sorted(keys)


PINNED_KEYS = ["alpha", "beta", 42, -7, ("x", 1), b"bytes", None, 3.5,
               True, False, ("a", ("b", 2))]


class TestPartitioner:
    def test_in_range(self):
        for key in ["a", 42, ("x", 1)]:
            assert 0 <= default_partitioner(key, 7) < 7

    def test_single_partition(self):
        assert default_partitioner("anything", 1) == 0

    def test_pinned_routing(self):
        # Frozen expected values: the partitioner is part of the on-disk
        # shuffle layout now, so any change to the key encoding (or a
        # regression back to the salted builtin ``hash``) must show up
        # as an explicit test failure, not silently reshuffled reducers.
        assert [default_partitioner(k, 97) for k in PINNED_KEYS] == [
            83, 90, 79, 45, 32, 87, 40, 14, 30, 46, 13,
        ]
        assert default_partitioner("word-count", 1 << 31) == 483266027
        assert default_partitioner(("rack", 3), 1 << 31) == 2122953821

    def test_distinct_types_do_not_collide(self):
        # "1", 1, True, 1.0, b"1" are distinct keys and must not share
        # an encoding (they would under str()-based hashing).
        tricky = ["1", 1, True, 1.0, b"1", (1,), ("1",), None]
        encodings = {mr_types._stable_key_bytes(k) for k in tricky}
        assert len(encodings) == len(tricky)

    def test_tuple_nesting_is_not_forgeable(self):
        # Length-prefixed recursive encoding: regrouping the same
        # leaves must produce different routing material.
        forms = [("ab", "c"), ("a", "bc"), (("ab",), "c"), ("ab", ("c",))]
        encodings = {mr_types._stable_key_bytes(k) for k in forms}
        assert len(encodings) == len(forms)

    def test_routing_survives_hash_randomization(self):
        # The regression this fixes: ``hash()`` is salted per process
        # (PYTHONHASHSEED), so mappers in different processes routed the
        # same key to different reducers.  The crc32 routing must agree
        # across interpreters no matter the seed.
        local = [default_partitioner(k, 97) for k in PINNED_KEYS]
        src = str(Path(mr_types.__file__).resolve().parents[2])
        code = (
            "from repro.mapreduce.types import default_partitioner\n"
            f"print([default_partitioner(k, 97) for k in {PINNED_KEYS!r}])"
        )
        for seed in ("0", "1", "424242"):
            env = {**os.environ, "PYTHONHASHSEED": seed,
                   "PYTHONPATH": src}
            out = subprocess.run(
                [sys.executable, "-c", code], env=env,
                capture_output=True, text=True, check=True, timeout=60,
            )
            assert eval(out.stdout.strip()) == local

    @given(st.one_of(st.text(), st.integers(), st.binary(),
                     st.tuples(st.text(), st.integers())),
           st.integers(min_value=1, max_value=10_000))
    def test_always_in_range(self, key, num_partitions):
        assert 0 <= default_partitioner(key, num_partitions) < num_partitions


class TestJobConf:
    def base(self, **kwargs):
        defaults = dict(
            name="job",
            input_file="f",
            map_fn=lambda r: [r],
            reduce_fn=lambda k, v, c: [],
        )
        defaults.update(kwargs)
        return JobConf(**defaults)

    def test_defaults_match_hadoop(self):
        conf = self.base()
        assert conf.io_sort_factor == 10
        assert conf.shuffle_merge_fraction == 0.70
        assert conf.reduce_retain_fraction == 0.0
        assert conf.spill_mode is SpillMode.DISK

    def test_shuffle_buffer_is_fraction_of_heap(self):
        conf = self.base(heap_size=1000, shuffle_merge_fraction=0.7)
        assert conf.shuffle_buffer_bytes == 700

    def test_reducers_without_reduce_fn_rejected(self):
        with pytest.raises(ConfigError):
            JobConf(name="j", input_file="f", map_fn=lambda r: [r])

    def test_map_only_job_allowed(self):
        conf = self.base(reduce_fn=None, num_reducers=0)
        assert conf.num_reducers == 0

    def test_bad_sort_factor_rejected(self):
        with pytest.raises(ConfigError):
            self.base(io_sort_factor=1)

    def test_negative_reducers_rejected(self):
        with pytest.raises(ConfigError):
            self.base(num_reducers=-1)
