import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.util.stats import Summary, ecdf, median, quantiles, skewness


class TestSkewness:
    def test_symmetric_sample_is_near_zero(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=20_000)
        assert abs(skewness(data)) < 0.1

    def test_right_tailed_sample_is_positive(self):
        rng = np.random.default_rng(7)
        data = rng.lognormal(mean=0, sigma=1.5, size=5_000)
        assert skewness(data) > 1.0

    def test_left_tailed_sample_is_negative(self):
        rng = np.random.default_rng(7)
        data = -rng.lognormal(mean=0, sigma=1.5, size=5_000)
        assert skewness(data) < -1.0

    def test_matches_scipy_unbiased_estimator(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(11)
        data = rng.exponential(size=137)
        ours = skewness(data)
        theirs = scipy_stats.skew(data, bias=False)
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_degenerate_inputs_return_zero(self):
        assert skewness([]) == 0.0
        assert skewness([1.0]) == 0.0
        assert skewness([1.0, 2.0]) == 0.0
        assert skewness([5.0] * 100) == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=50))
    def test_finite_on_arbitrary_samples(self, values):
        result = skewness(values)
        assert np.isfinite(result)

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=50),
        st.floats(min_value=-100.0, max_value=100.0),
    )
    def test_translation_invariant(self, values, shift):
        # Invariance only holds when the shift doesn't swamp the spread
        # in float arithmetic (adding 1.0 to [0, 0, 1e-92] produces a
        # literally constant sample).
        spread = max(values) - min(values)
        scale = max(map(abs, values)) + abs(shift)
        assume(spread == 0.0 or spread > 1e-6 * scale)
        base = skewness(values)
        shifted = skewness([v + shift for v in values])
        assert shifted == pytest.approx(base, abs=1e-6)


class TestEcdf:
    def test_fractions_reach_one(self):
        xs, fractions = ecdf([3, 1, 2])
        assert list(xs) == [1, 2, 3]
        assert fractions[-1] == 1.0

    def test_empty(self):
        xs, fractions = ecdf([])
        assert xs.size == 0

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=100))
    def test_monotone(self, values):
        xs, fractions = ecdf(values)
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(fractions) > 0)


class TestQuantiles:
    def test_median_of_odd_sample(self):
        assert median([5, 1, 3]) == 3

    def test_quantiles_interpolate(self):
        q25, q75 = quantiles(range(101), [0.25, 0.75])
        assert q25 == 25
        assert q75 == 75

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantiles([], [0.5])


class TestSummary:
    def test_fields(self):
        summary = Summary.of(list(range(100)))
        assert summary.count == 100
        assert summary.minimum == 0
        assert summary.maximum == 99
        assert summary.p50 == pytest.approx(49.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Summary.of([])
