import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.util.units import GB, KB, MB, TB, fmt_duration, fmt_size, parse_size

_FACTORS = {"B": 1, "KB": KB, "MB": MB, "GB": GB, "TB": TB}


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("1024", 1024),
            ("1 KB", KB),
            ("1K", KB),
            ("10 MB", 10 * MB),
            ("1.5 MB", int(1.5 * MB)),
            ("2GB", 2 * GB),
            ("1 TB", TB),
            ("128 mb", 128 * MB),
            ("7 B", 7),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_numbers_pass_through(self):
        assert parse_size(4096) == 4096
        assert parse_size(1.5) == 1

    @pytest.mark.parametrize(
        "text", ["", "GB", "10 XB", "ten MB", "1..5 MB", "1 QB", "-1 MB"]
    )
    def test_invalid(self, text):
        with pytest.raises(ConfigError):
            parse_size(text)

    def test_rejects_negative_numbers(self):
        with pytest.raises(ConfigError):
            parse_size(-1)
        with pytest.raises(ConfigError):
            parse_size(-0.5)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_rejects_non_finite_numbers(self, bad):
        with pytest.raises(ConfigError):
            parse_size(bad)


class TestFmtSize:
    def test_picks_readable_units(self):
        assert fmt_size(10 * GB) == "10.0 GB"
        assert fmt_size(512) == "512 B"
        assert fmt_size(int(2.5 * MB)) == "2.5 MB"

    def test_negative(self):
        assert fmt_size(-1 * MB) == "-1.0 MB"

    def test_roundtrip_magnitude(self):
        for value in [3, 3 * KB, 3 * MB, 3 * GB, 3 * TB]:
            assert parse_size(fmt_size(value)) == value


class TestRoundTripProperties:
    """fmt_size -> parse_size round-trips within display precision."""

    @given(st.integers(min_value=0, max_value=100 * TB))
    def test_roundtrip_error_is_bounded(self, nbytes):
        text = fmt_size(nbytes)
        parsed = parse_size(text)
        # fmt_size keeps one decimal place of the displayed unit, and
        # parse_size truncates to whole bytes: the round-trip error is
        # at most half an ulp of the display (0.05 unit) plus 1 byte.
        factor = _FACTORS[text.split()[-1]]
        assert abs(parsed - nbytes) <= 0.05 * factor + 1

    @given(
        st.sampled_from([1, KB, MB, GB, TB]),
        st.integers(min_value=0, max_value=1023),
    )
    def test_exact_unit_multiples_roundtrip_exactly(self, factor, count):
        nbytes = count * factor
        assert parse_size(fmt_size(nbytes)) == nbytes

    @given(st.integers(min_value=0, max_value=100 * TB))
    def test_parse_output_is_nonnegative_int(self, nbytes):
        parsed = parse_size(fmt_size(nbytes))
        assert isinstance(parsed, int)
        assert parsed >= 0


class TestFmtDuration:
    def test_units(self):
        assert fmt_duration(25e-3) == "25.0 ms"
        assert fmt_duration(5e-7) == "0.5 us"
        assert fmt_duration(42.0) == "42.0 s"
        assert fmt_duration(135) == "2m15s"
        assert fmt_duration(7200 + 120) == "2h02m"

    def test_negative(self):
        assert fmt_duration(-0.5) == "-500.0 ms"
