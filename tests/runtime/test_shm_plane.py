"""The same-node shared-memory data plane (SHM control + payload split).

Four layers:

* **End to end over a sharded cluster** — a same-host chain with
  ``shm_data_plane`` on moves payloads through the mmap (the
  ``shm.writes``/``shm.reads`` counters prove engagement) and reads
  back byte-exact; ``off`` keeps the PR-9 behaviour (same-host shards
  excluded from remote placement).
* **Byte identity (hypothesis)** — random payload mixes, with the
  compression pipeline and XOR redundancy toggled, read back identical
  through the plane and through a pure-socket chain aimed at the very
  same shards.
* **The grant/copy race** — a slot freed and recycled between
  ``read_grant`` and the client's memcpy is detected by the slot
  generation (counted fallback, never corrupted bytes), and a payload
  that changes under the copy is caught by the crc.
* **Fault sites** — ``shm.attach`` / ``shm.commit`` / ``shm.read_grant``
  failures each degrade to the socket path with the per-reason
  fallback counter bumped, and a stale pool epoch kills the plane for
  good (one fallback, then silent socket service).
"""

import os
import threading
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.errors import SpongeError
from repro.faults import hooks as faults
from repro.faults.plan import FaultPlan
from repro.runtime import LocalSpongeCluster, protocol
from repro.runtime.client import RemoteServerStore, ShmDataPlane, build_chain
from repro.runtime.shm_pool import ForeignPoolView, MmapSpongePool
from repro.runtime.sponge_server import ServerConfig, SpongeServerProcess
from repro.sponge import ChunkLocation, SpongeConfig, SpongeFile
from repro.sponge.chunk import TaskId

CHUNK = 64 * 1024
POOL = 16 * CHUNK  # per node; two shards of 8 chunks each


@pytest.fixture(scope="module")
def cluster():
    # gc_interval=60: chunks owned by off-node client hosts survive the
    # module (GC would otherwise reap them as crashed-task orphans).
    with LocalSpongeCluster(num_nodes=1, pool_size=POOL, chunk_size=CHUNK,
                            poll_interval=0.1, gc_interval=60.0,
                            shards=2) as cluster:
        yield cluster


@pytest.fixture()
def registry():
    registry = obs.install(source="test-shm-plane")
    try:
        yield registry
    finally:
        obs.uninstall()


def plane_file(cluster, label, mode="rw", **config_kwargs):
    """A SpongeFile on a same-host chain (no direct pool attach, so
    every chunk goes through the shard servers)."""
    config = SpongeConfig(chunk_size=CHUNK, shm_data_plane=mode,
                          **config_kwargs)
    chain = cluster.chain(0, config=config, attach_local_pool=False)
    owner = cluster.task_id(0, label)
    return SpongeFile(owner, chain, config)


def socket_file(cluster, label, **config_kwargs):
    """A SpongeFile on a pure-socket chain aimed at the same shards.

    The chain's host differs from the node's, so the same-host
    exclusion does not apply and placement targets the identical
    shards — just over loopback TCP.
    """
    config = SpongeConfig(chunk_size=CHUNK, **config_kwargs)
    chain = build_chain(
        host=f"client-{label}",
        tracker_address=cluster.tracker_address,
        spill_dir=cluster.workdir / f"spill-{label}",
        config=config,
    )
    from repro.runtime.local_cluster import runtime_task_id

    owner = runtime_task_id(f"client-{label}", label)
    return SpongeFile(owner, chain, config)


# -- end to end over a sharded cluster ----------------------------------------


class TestEndToEnd:
    def test_plane_carries_writes_and_reads(self, cluster, registry):
        sf = plane_file(cluster, "carry")
        payload = bytes(range(256)) * (4 * CHUNK // 256)
        sf.write_all(payload)
        sf.close_sync()
        assert all(h.location is ChunkLocation.REMOTE_MEMORY
                   for h in sf.handles)
        assert bytes(sf.read_all()) == payload
        sf.delete_sync()
        snapshot = registry.snapshot()
        # The payload really moved through the mmap, both directions.
        assert snapshot.counters["shm.writes"] >= 4
        assert snapshot.counters["shm.reads"] >= 4
        assert snapshot.counters["shm.bytes"] >= 2 * len(payload)

    def test_write_mode_reads_over_the_socket(self, cluster, registry):
        sf = plane_file(cluster, "wonly", mode="write")
        payload = b"w" * (2 * CHUNK)
        sf.write_all(payload)
        sf.close_sync()
        assert bytes(sf.read_all()) == payload
        sf.delete_sync()
        snapshot = registry.snapshot()
        assert snapshot.counters["shm.writes"] >= 2
        assert "shm.reads" not in snapshot.counters

    def test_off_keeps_same_host_shards_excluded(self, cluster, registry):
        # PR-9 behaviour pin: with the plane off and no local pool, the
        # single node's shards are this host's own servers, so nothing
        # places in REMOTE_MEMORY — the write falls through to disk.
        sf = plane_file(cluster, "off", mode="off")
        sf.write_all(b"d" * (2 * CHUNK))
        sf.close_sync()
        assert {h.location for h in sf.handles} == {ChunkLocation.LOCAL_DISK}
        sf.delete_sync()
        assert "shm.writes" not in registry.snapshot().counters

    def test_socket_chain_still_roundtrips(self, cluster, registry):
        # The comparison chain used by the property below: same shards,
        # plain TCP, no plane engagement.
        sf = socket_file(cluster, "sock")
        payload = b"s" * (2 * CHUNK + 17)
        sf.write_all(payload)
        sf.close_sync()
        assert bytes(sf.read_all()) == payload
        sf.delete_sync()
        assert "shm.writes" not in registry.snapshot().counters

    def test_leases_are_returned_on_release(self, cluster):
        # The plane's read-ahead lease cache must drain through
        # release_leases (SpongeFile close/delete), not leak until the
        # server's TTL sweep starves the pool.
        sf = plane_file(cluster, "drain")
        sf.write_all(b"l" * CHUNK)
        sf.close_sync()
        stores = [s for s in sf.session.chain._remote_stores.values()
                  if getattr(s, "shm", None) is not None]
        assert stores  # the plane attached on the same-host shard
        sf.delete_sync()
        for store in stores:
            assert not store.shm._lease_cache.get(str(sf.owner))


# -- byte identity under random payload mixes (hypothesis) --------------------


PAYLOADS = st.lists(
    st.one_of(
        st.binary(min_size=1, max_size=512),
        # Compressible runs and full-chunk slabs exercise slot reuse,
        # multi-chunk batches, and the compression probe.
        st.integers(min_value=1, max_value=2 * CHUNK).map(
            lambda n: b"ab" * (n // 2 + 1)
        ),
    ),
    min_size=1, max_size=3,
)


class TestByteIdentity:
    @settings(max_examples=8, deadline=None)
    @given(parts=PAYLOADS, compression=st.booleans(),
           redundancy=st.booleans())
    def test_plane_and_socket_paths_agree(self, cluster, parts,
                                          compression, redundancy):
        payload = b"".join(parts)
        kwargs = dict(
            compression="adaptive" if compression else "off",
            redundancy="xor" if redundancy else "off",
            redundancy_k=2,
        )
        registry = obs.install(source="prop-shm")
        try:
            via_plane = plane_file(cluster, "prop-shm", **kwargs)
            via_socket = socket_file(cluster, "prop-sock", **kwargs)
            try:
                via_plane.write_all(payload)
                via_plane.close_sync()
                via_socket.write_all(payload)
                via_socket.close_sync()
                assert bytes(via_plane.read_all()) == payload
                assert bytes(via_socket.read_all()) == payload
            finally:
                via_plane.delete_sync()
                via_socket.delete_sync()
            snapshot = registry.snapshot()
            # The plane run genuinely used the mmap path.
            assert snapshot.counters.get("shm.writes", 0) >= 1
        finally:
            obs.uninstall()


# -- the grant/copy race ------------------------------------------------------


OWNER = TaskId("hostA", "pid:1:writer")
OTHER = TaskId("hostB", "pid:2:other")


@pytest.fixture()
def pool(tmp_path):
    with MmapSpongePool(tmp_path / "pool", create=True,
                        pool_size=4 * CHUNK, chunk_size=CHUNK) as pool:
        yield pool


def make_plane(pool, mode="rw"):
    view = ForeignPoolView(pool.directory, chunk_size=pool.chunk_size,
                           num_chunks=pool.num_chunks,
                           chunks_per_segment=pool.chunks_per_segment,
                           epoch=pool.epoch)
    # store=None: these tests drive _copy_out directly, no RPCs.
    return ShmDataPlane(None, view, pool.epoch, mode)


class TestGrantCopyRace:
    def grant_for(self, pool, index, payload):
        return [pool.generation(index), len(payload), zlib.crc32(payload)]

    def test_fresh_grant_copies_out(self, pool, registry):
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"fresh bytes")
        plane = make_plane(pool)
        try:
            grant = self.grant_for(pool, index, b"fresh bytes")
            assert plane._copy_out(index, grant) == b"fresh bytes"
            assert "shm.fallbacks" not in registry.snapshot().counters
        finally:
            plane.view.close()

    def test_freed_and_recycled_slot_is_detected(self, pool, registry):
        # The race the generation table exists for: the server frees the
        # slot after granting and another task's bytes land in it before
        # the reader's memcpy.  The stale grant must yield a counted
        # fallback — never the recycler's payload.
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"victim payload")
        plane = make_plane(pool)
        try:
            grant = self.grant_for(pool, index, b"victim payload")
            pool.free(index, OWNER)
            recycled = pool.allocate(OTHER)
            assert recycled == index
            pool.write(index, OTHER, b"intruder bytes")
            assert plane._copy_out(index, grant) is None
            counters = registry.snapshot().counters
            assert counters["shm.fallbacks"] == 1
            assert counters["shm.fallbacks.generation"] == 1
        finally:
            plane.view.close()

    def test_free_without_recycle_is_detected(self, pool, registry):
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"soon gone")
        plane = make_plane(pool)
        try:
            grant = self.grant_for(pool, index, b"soon gone")
            pool.free(index, OWNER)
            assert plane._copy_out(index, grant) is None
            assert registry.snapshot().counters[
                "shm.fallbacks.generation"] == 1
        finally:
            plane.view.close()

    def test_payload_mutation_is_caught_by_the_crc(self, pool, registry):
        # Same generation, different bytes (a torn in-place rewrite):
        # the crc is the backstop under the advisory generation.
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"original!")
        plane = make_plane(pool)
        try:
            grant = self.grant_for(pool, index, b"original!")
            pool.write(index, OWNER, b"mutated!!")
            assert plane._copy_out(index, grant) is None
            assert registry.snapshot().counters["shm.fallbacks.crc"] == 1
        finally:
            plane.view.close()


# -- fault sites and the stale-epoch ladder -----------------------------------


@pytest.fixture()
def server(tmp_path):
    """One in-process shard served from a thread, so plans armed in
    this process fire inside its dispatch (the shm.* sites are
    server-side)."""
    import socket as socketlib

    with socketlib.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    config = ServerConfig(
        server_id="sponge@shm-host", host="shm-host", rack="r0", port=port,
        pool_dir=os.path.join(tmp_path, "pool"),
        pool_size=64 * CHUNK, chunk_size=CHUNK,
    )
    process = SpongeServerProcess(config)
    thread = threading.Thread(target=process.serve_forever, daemon=True)
    thread.start()
    try:
        reply, _ = protocol.request(("127.0.0.1", port), {"op": "ping"},
                                    timeout=5.0)
        assert reply["ok"]
        yield ("127.0.0.1", port)
    finally:
        faults.disarm()
        process.shutdown()
        thread.join(timeout=5)
        process.close()


def make_store(address):
    return RemoteServerStore("sponge@shm-host", address, timeout=2.0)


class TestFaultSites:
    OWNER = TaskId("shm-host", "pid:9:faulted")

    def test_attach_fault_degrades_to_socket(self, server, registry):
        store = make_store(server)
        with faults.injected(FaultPlan().fail_shm_plane(site="shm.attach",
                                                        times=1)):
            assert store.attach_shm("rw") is False
        assert registry.snapshot().counters["shm.fallbacks.attach"] == 1
        assert store._shm_plane() is None
        # Disarmed, the very next handshake succeeds.
        assert store.attach_shm("rw") is True
        assert store._shm_plane() is not None

    def test_commit_fault_falls_back_per_write(self, server, registry):
        store = make_store(server)
        assert store.attach_shm("rw")
        with faults.injected(FaultPlan().fail_shm_plane(site="shm.commit",
                                                        times=1)):
            handle = store._write(self.OWNER, b"spilled anyway")
        assert bytes(store._read(handle)) == b"spilled anyway"
        assert registry.snapshot().counters["shm.fallbacks.commit"] == 1
        # The plane survived the refusal: the next write uses it.
        assert store._write(self.OWNER, b"back on plane")
        assert registry.snapshot().counters["shm.writes"] >= 1

    def test_grant_fault_falls_back_per_read(self, server, registry):
        store = make_store(server)
        assert store.attach_shm("rw")
        handle = store._write(self.OWNER, b"granted later")
        with faults.injected(FaultPlan().fail_shm_plane(
                site="shm.read_grant", times=1)):
            assert bytes(store._read(handle)) == b"granted later"
        assert registry.snapshot().counters["shm.fallbacks.grant"] == 1
        assert bytes(store._read(handle)) == b"granted later"

    def test_stale_epoch_kills_the_plane_once(self, server, registry):
        store = make_store(server)
        assert store.attach_shm("rw")
        # Tamper with the advertised epoch: the server refuses every
        # commit with the shm-stale code, and the plane goes dead —
        # exactly one counted fallback, then silent socket service.
        store.shm.epoch = "00" * 8
        first = store._write(self.OWNER, b"stale one")
        second = store._write(self.OWNER, b"stale two")
        assert bytes(store._read(first)) == b"stale one"
        assert bytes(store._read(second)) == b"stale two"
        assert store.shm.dead
        assert store._shm_plane() is None
        counters = registry.snapshot().counters
        assert counters["shm.fallbacks.commit"] == 1
        assert "shm.writes" not in counters

    def test_unleased_commit_is_refused(self, server, registry):
        # A commit naming a slot the owner holds no lease on must be
        # rejected atomically (and counted) — the integrity gate that
        # keeps a buggy or hostile client from publishing foreign slots.
        store = make_store(server)
        assert store.attach_shm("rw")
        reply, _ = store.connections.request(
            server,
            {"op": "write_commit", "epoch": store.shm.epoch,
             "chunks": [[0, 10, 0]],
             **store._owner_header(self.OWNER)},
            timeout=2.0,
        )
        assert not reply["ok"] and "lease" in reply["error"]
        assert registry.snapshot().counters[
            "server.shm.commit.refused"] == 1

    def test_oversized_and_overwide_batches_fall_back(self, server,
                                                      registry):
        store = make_store(server)
        assert store.attach_shm("rw")
        plane = store._shm_plane()
        assert plane.write_chunks(self.OWNER, [b"x" * (CHUNK + 1)]) is None
        too_many = [b"y"] * (protocol.MAX_BATCH + 1)
        assert plane.write_chunks(self.OWNER, too_many) is None
        assert registry.snapshot().counters["shm.fallbacks.size"] == 2
