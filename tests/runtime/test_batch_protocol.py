"""Batched wire framing: vectored payloads, lens validation, scatter sinks.

The batched ops put one JSON header plus N concatenated chunk payloads
in a single framing unit; the receiver trusts ``lens`` only after
:func:`protocol.check_lens` proves it consistent with ``payload_len``
(anything else would desync the stream).  These tests pin the framing
round trip — including scatter-gather send and scatter-sink receive
over real sockets — with hypothesis driving the chunk shapes.
"""

import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.runtime import protocol


def socket_pair():
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    accepted, _ = server.accept()
    server.close()
    return client, accepted


# -- check_lens / split_batch (pure) ------------------------------------------


class TestCheckLens:
    def test_accepts_consistent_lens(self):
        assert protocol.check_lens([1, 2, 3], 6) == [1, 2, 3]

    def test_rejects_non_list(self):
        with pytest.raises(ProtocolError):
            protocol.check_lens("nope", 4)

    def test_rejects_oversized_batch(self):
        lens = [1] * (protocol.MAX_BATCH + 1)
        with pytest.raises(ProtocolError):
            protocol.check_lens(lens, len(lens))

    def test_accepts_max_batch_exactly(self):
        lens = [1] * protocol.MAX_BATCH
        assert protocol.check_lens(lens, len(lens)) == lens

    @pytest.mark.parametrize("bad", [0, -1, True, 1.5, "2", None])
    def test_rejects_non_positive_or_non_int_entries(self, bad):
        with pytest.raises(ProtocolError):
            protocol.check_lens([1, bad], 3)

    def test_rejects_sum_mismatch(self):
        with pytest.raises(ProtocolError):
            protocol.check_lens([2, 2], 5)

    def test_rejects_chunk_over_max_chunk(self):
        with pytest.raises(ProtocolError):
            protocol.check_lens([10], 10, max_chunk=8)


class TestSplitBatch:
    def test_zero_copy_views(self):
        payload = b"aabbbc"
        parts = protocol.split_batch(payload, [2, 3, 1])
        assert [bytes(p) for p in parts] == [b"aa", b"bbb", b"c"]
        assert all(isinstance(p, memoryview) for p in parts)

    def test_rejects_sum_mismatch(self):
        with pytest.raises(ProtocolError):
            protocol.split_batch(b"abc", [1, 1])

    @given(st.lists(st.binary(min_size=1, max_size=64),
                    min_size=1, max_size=protocol.MAX_BATCH))
    def test_split_inverts_concat(self, chunks):
        lens = [len(c) for c in chunks]
        payload = b"".join(chunks)
        assert protocol.check_lens(lens, len(payload)) == lens
        parts = protocol.split_batch(payload, lens)
        assert [bytes(p) for p in parts] == chunks


# -- socket round trips -------------------------------------------------------


def _exchange(header, chunks, sink=None):
    """One send_message/recv_message exchange over a real socket pair."""
    client, server = socket_pair()
    received = {}

    def reader():
        received["msg"] = protocol.recv_message(server, sink=sink)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        protocol.send_message(client, header, chunks)
        thread.join(timeout=10)
        assert "msg" in received, "receiver never completed"
        return received["msg"]
    finally:
        client.close()
        server.close()


class TestVectoredFraming:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=8192),
                    min_size=1, max_size=protocol.MAX_BATCH))
    def test_scatter_gather_send_reassembles(self, chunks):
        """N buffers go out in one framing unit; flat payload comes in."""
        lens = [len(c) for c in chunks]
        header, payload = _exchange({"op": "write_batch", "lens": lens}, chunks)
        assert header["payload_len"] == sum(lens)
        got = protocol.split_batch(payload, protocol.check_lens(
            header["lens"], header["payload_len"]))
        assert [bytes(p) for p in got] == chunks

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=8192),
                    min_size=1, max_size=16))
    def test_scatter_sink_receives_in_place(self, chunks):
        """A sink returning N buffers gets each chunk landed in place."""
        lens = [len(c) for c in chunks]
        buffers = [bytearray(n) for n in lens]

        def sink(header, payload_len):
            assert payload_len == sum(lens)
            return buffers

        header, payload = _exchange(
            {"op": "write_batch", "lens": lens}, chunks, sink=sink)
        assert payload == b""  # bytes live in the sink's buffers
        assert [bytes(b) for b in buffers] == chunks

    def test_single_buffer_payload_unchanged(self):
        """Old single-chunk framing still round-trips (compat path)."""
        header, payload = _exchange({"op": "alloc_write"}, b"\x01" * 1000)
        assert header["payload_len"] == 1000
        assert payload == b"\x01" * 1000

    def test_empty_chunk_list_sends_header_only(self):
        header, payload = _exchange({"op": "write_batch", "lens": []}, [])
        assert header["payload_len"] == 0
        assert payload == b""

    def test_sink_exception_keeps_stream_framed(self):
        """A refusing sink drains the payload; the next message parses."""
        client, server = socket_pair()
        try:
            protocol.send_message(client, {"op": "a"}, [b"x" * 4096])
            protocol.send_message(client, {"op": "b"}, b"tail")
            with pytest.raises(MemoryError):
                protocol.recv_message(
                    server, sink=lambda h, n: (_ for _ in ()).throw(
                        MemoryError("no room")))
            header, payload = protocol.recv_message(server)
            assert header["op"] == "b"
            assert payload == b"tail"
        finally:
            client.close()
            server.close()
