"""Compression over the real runtime.

Three layers, mirroring the ISSUE's satellites:

* **Store conformance** — :class:`CompressedStore` wrapping the real
  shared-memory :class:`LocalMmapStore`, alone and composed with
  :class:`EncryptedStore` (compress *before* encrypt: ciphertext is
  incompressible, so the reverse order stores ~raw size).
* **build_chain wiring** — ``compress_stores`` wraps the right tiers,
  surfaces the disk-coalescing loss for ``"all"``, and refuses to
  stack on top of the pipeline codec.
* **Pipeline compression end to end** — ``config.compression`` over a
  live :class:`LocalSpongeCluster`, with the codec counters visible in
  a cluster scrape.
"""

import logging
import os

import pytest

from repro import obs
from repro.errors import ConfigError
from repro.obs.dump import compression_summary
from repro.runtime import LocalSpongeCluster
from repro.runtime.client import LocalMmapStore, build_chain
from repro.runtime.shm_pool import MmapSpongePool
from repro.sponge import ChunkLocation, SpongeConfig, SpongeFile
from repro.sponge.chunk import TaskId
from repro.sponge.compression import CompressedStore
from repro.sponge.crypto import EncryptedStore
from repro.sponge.store import run_sync

CHUNK = 64 * 1024
POOL = 4 * CHUNK
OWNER = TaskId("h0", "codec-runtime")
KEY = b"0123456789abcdef0123456789abcdef"
TEXT = (b"%08d\tkey-%04d\tvalue-%06d\n" % (3, 14, 159265)) * 12_000  # ~300 KB


@pytest.fixture()
def mmap_pool(tmp_path):
    return MmapSpongePool(tmp_path / "pool", create=True,
                          pool_size=POOL, chunk_size=CHUNK)


class TestMmapConformance:
    def test_compressed_store_over_mmap_pool(self, mmap_pool):
        store = CompressedStore(LocalMmapStore(mmap_pool))
        payload = TEXT[:50_000]
        handle = run_sync(store.write_chunk(OWNER, payload))
        # Handle restamped to raw size; shared memory holds the frames.
        assert handle.nbytes == len(payload)
        stored = mmap_pool.read(handle.ref[1], OWNER)
        assert len(stored) < len(payload) // 2
        assert bytes(run_sync(store.read_chunk(handle))) == payload
        run_sync(store.free_chunk(handle))
        assert mmap_pool.free_bytes == POOL

    def test_incompressible_roundtrip_over_mmap_pool(self, mmap_pool):
        store = CompressedStore(LocalMmapStore(mmap_pool))
        payload = os.urandom(CHUNK // 2)
        handle = run_sync(store.write_chunk(OWNER, payload))
        assert bytes(run_sync(store.read_chunk(handle))) == payload
        run_sync(store.free_chunk(handle))

    def test_compress_then_encrypt_over_mmap_pool(self, mmap_pool):
        # Correct wrapper order: CompressedStore outermost, so units
        # compress while still plaintext, then seal.
        store = CompressedStore(
            EncryptedStore(LocalMmapStore(mmap_pool), KEY)
        )
        payload = TEXT[:50_000]
        handle = run_sync(store.write_chunk(OWNER, payload))
        sealed = bytes(mmap_pool.read(handle.ref[1], OWNER))
        assert b"key-0014" not in sealed  # sealed...
        assert len(sealed) < len(payload) // 2  # ...and compressed
        assert bytes(run_sync(store.read_chunk(handle))) == payload
        run_sync(store.free_chunk(handle))

    def test_encrypt_then_compress_stores_near_raw(self, mmap_pool):
        # The documented anti-pattern: encrypting first feeds the codec
        # ciphertext, which never compresses.  Still byte-exact — just
        # a wasted probe and a raw-size chunk.
        store = EncryptedStore(
            CompressedStore(LocalMmapStore(mmap_pool)), KEY
        )
        payload = TEXT[:40_000]
        handle = run_sync(store.write_chunk(OWNER, payload))
        inner_stats = store.inner.stats
        assert inner_stats.stored_bytes >= inner_stats.raw_bytes
        assert bytes(run_sync(store.read_chunk(handle))) == payload
        run_sync(store.free_chunk(handle))


class TestBuildChainWiring:
    ADDRESS = ("127.0.0.1", 1)  # TrackerClient connects lazily

    def make(self, tmp_path, **kwargs):
        pool_dir = tmp_path / "chain-pool"
        if not (pool_dir / "meta.dat").exists():
            MmapSpongePool(pool_dir, create=True,
                           pool_size=POOL, chunk_size=CHUNK)
        return build_chain(
            host="h0",
            tracker_address=self.ADDRESS,
            spill_dir=tmp_path / "spill",
            local_pool_dir=pool_dir,
            dfs_dir=tmp_path / "dfs",
            **kwargs,
        )

    def test_memory_wraps_memory_tiers_only(self, tmp_path):
        chain = self.make(tmp_path, compress_stores="memory")
        assert isinstance(chain.local_store, CompressedStore)
        # Disk tiers stay unwrapped: append-coalescing survives.
        assert not isinstance(chain.disk_store, CompressedStore)
        assert chain.disk_store.supports_append

    def test_all_wraps_disk_and_surfaces_coalescing_loss(self, tmp_path,
                                                         caplog):
        registry = obs.install(source="test-chain")
        try:
            with caplog.at_level(logging.WARNING, "repro.runtime.client"):
                chain = self.make(tmp_path, compress_stores="all")
            assert isinstance(chain.disk_store, CompressedStore)
            assert isinstance(chain.dfs_store, CompressedStore)
            # The regression this guards: losing coalescing used to be
            # silent.  Now it is a warning plus a counter.
            assert not chain.disk_store.supports_append
            assert any("coalescing" in r.message for r in caplog.records)
            snapshot = registry.snapshot()
            assert snapshot.counters["chain.coalescing_disabled"] == 1
        finally:
            obs.uninstall()

    def test_bad_value_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            self.make(tmp_path, compress_stores="disk")

    def test_stacking_on_pipeline_codec_rejected(self, tmp_path):
        config = SpongeConfig(chunk_size=CHUNK, compression="adaptive")
        with pytest.raises(ConfigError):
            self.make(tmp_path, compress_stores="memory", config=config)


class TestPipelineOverCluster:
    @pytest.fixture(scope="class")
    def cluster(self):
        with LocalSpongeCluster(num_nodes=2, pool_size=POOL,
                                chunk_size=CHUNK, poll_interval=0.1,
                                gc_interval=1.0) as cluster:
            yield cluster

    def test_adaptive_pipeline_end_to_end(self, cluster):
        registry = obs.install(source="test-pipeline")
        try:
            config = SpongeConfig(chunk_size=CHUNK, compression="adaptive")
            chain = cluster.chain(0, config=config)
            sf = SpongeFile(cluster.task_id(0, "codec"), chain, config)
            payload = TEXT + os.urandom(CHUNK)  # mixed phases
            sf.write_all(payload)
            sf.close_sync()
            assert bytes(sf.read_all()) == payload
            assert sum(h.nbytes for h in sf.handles) == len(payload)
            # ~364 KB raw fits the 256 KB local pool once compressed.
            assert {h.location for h in sf.handles} <= {
                ChunkLocation.LOCAL_MEMORY, ChunkLocation.REMOTE_MEMORY,
            }
            sf.delete_sync()

            # Satellite 6: codec accounting reaches the cluster scrape.
            snapshot = cluster.scrape(include_local=True)
            assert snapshot.counters["compress.chunks"] > 0
            assert snapshot.counters["compress.raw_bytes"] >= len(TEXT)
            summary = compression_summary(snapshot)
            assert summary is not None and "ratio" in summary
        finally:
            obs.uninstall()

    def test_compress_stores_memory_over_cluster(self, cluster):
        config = SpongeConfig(chunk_size=CHUNK)
        chain = cluster.chain(1, config=config, compress_stores="memory")
        sf = SpongeFile(cluster.task_id(1, "wrapped"), chain, config)
        sf.write_all(TEXT[:CHUNK * 2])
        sf.close_sync()
        assert bytes(sf.read_all()) == TEXT[:CHUNK * 2]
        sf.delete_sync()
