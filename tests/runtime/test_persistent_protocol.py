"""Persistent-connection behaviour of the sponge server protocol.

One connection carries many messages; one-shot clients (close after a
single exchange) remain fully supported — backward compatibility with
the pre-pooling wire behaviour.
"""

import socket
import time

import pytest

from repro.errors import ConnectionClosedError
from repro.runtime import LocalSpongeCluster, protocol
from repro.runtime.client import TrackerClient

CHUNK = 64 * 1024
POOL = 4 * CHUNK


@pytest.fixture(scope="module")
def cluster():
    with LocalSpongeCluster(num_nodes=2, pool_size=POOL, chunk_size=CHUNK,
                            poll_interval=0.1, gc_interval=5.0) as cluster:
        yield cluster


def _connect(cluster, node=0):
    sock = socket.create_connection(cluster.server_address(node), timeout=5)
    protocol.configure_socket(sock)
    return sock


def _exchange(sock, header, payload=b""):
    protocol.send_message(sock, header, payload)
    return protocol.recv_message(sock)


OWNER = {"owner_host": "node0", "owner_task": "pid:1:proto"}


class TestPersistentConnections:
    def test_many_messages_on_one_connection(self, cluster):
        sock = _connect(cluster)
        try:
            for _ in range(3):
                reply, _ = _exchange(sock, {"op": "ping"})
                assert reply["ok"]
            # A full chunk lifecycle, still on the same connection.
            reply, _ = _exchange(sock, {"op": "alloc_write", **OWNER},
                                 b"x" * CHUNK)
            index = protocol.check_reply(reply)["index"]
            reply, payload = _exchange(sock, {"op": "read", "index": index,
                                              **OWNER})
            protocol.check_reply(reply)
            assert bytes(payload) == b"x" * CHUNK
            reply, _ = _exchange(sock, {"op": "free", "index": index, **OWNER})
            protocol.check_reply(reply)
        finally:
            sock.close()

    def test_oneshot_client_still_works(self, cluster):
        # The pre-pooling client behaviour: fresh connection, one
        # exchange, close.  Must keep working against looping servers.
        for _ in range(2):
            reply, _ = protocol.request(cluster.server_address(0),
                                        {"op": "ping"})
            assert reply["ok"]

    def test_malformed_request_gets_error_reply_then_close(self, cluster):
        sock = _connect(cluster)
        try:
            raw = b"this is not json"
            sock.sendall(len(raw).to_bytes(4, "big") + raw)
            reply, _ = protocol.recv_message(sock)
            assert not reply["ok"]
            assert reply["code"] == "protocol"
            # The server hangs up after a framing error (the stream
            # position is unknowable); the close is clean.
            with pytest.raises(ConnectionClosedError):
                protocol.recv_message(sock)
        finally:
            sock.close()

    def test_refused_payload_keeps_connection_usable(self, cluster):
        sock = _connect(cluster)
        try:
            # Payload larger than the chunk size: the receive sink
            # refuses it, the server drains the stream, replies with an
            # error — and the connection stays good.
            reply, _ = _exchange(sock, {"op": "alloc_write", **OWNER},
                                 b"y" * (CHUNK + 1))
            assert not reply["ok"]
            reply, _ = _exchange(sock, {"op": "ping"})
            assert reply["ok"]
        finally:
            sock.close()

    def test_free_releases_quota_without_payload_read(self, cluster):
        sock = _connect(cluster)
        try:
            indices = []
            for _ in range(POOL // CHUNK):
                reply, _ = _exchange(sock, {"op": "alloc_write", **OWNER},
                                     b"z" * CHUNK)
                indices.append(protocol.check_reply(reply)["index"])
            for index in indices:
                reply, _ = _exchange(sock, {"op": "free", "index": index,
                                            **OWNER})
                protocol.check_reply(reply)
            reply, _ = _exchange(sock, {"op": "free_bytes"})
            assert reply["free_bytes"] == POOL
            # Quota accounting survived the metadata-only free path:
            # the pool accepts a full round of writes again.
            reply, _ = _exchange(sock, {"op": "alloc_write", **OWNER},
                                 b"w" * CHUNK)
            index = protocol.check_reply(reply)["index"]
            _exchange(sock, {"op": "free", "index": index, **OWNER})
        finally:
            sock.close()


class TestTrackerCache:
    def test_free_list_cached_within_ttl(self, cluster):
        client = TrackerClient(cluster.tracker_address, cache_ttl=30.0)
        first = client._fetch()
        assert client._fetch() is first  # served from cache, no RPC

    def test_invalidate_forces_refetch(self, cluster):
        client = TrackerClient(cluster.tracker_address, cache_ttl=30.0)
        first = client._fetch()
        client.invalidate()
        assert client._fetch() is not first

    def test_zero_ttl_always_fetches(self, cluster):
        client = TrackerClient(cluster.tracker_address, cache_ttl=0.0)
        first = client._fetch()
        assert client._fetch() is not first

    def test_expired_cache_refetches(self, cluster):
        client = TrackerClient(cluster.tracker_address, cache_ttl=0.05)
        first = client._fetch()
        time.sleep(0.1)
        assert client._fetch() is not first
