"""Concurrency on the real runtime: parallel processes share pools.

Exercises the flock'd metadata region and the threaded TCP servers
under simultaneous allocation from several live processes — the
closest thing to the paper's "multiple tasks per machine" reality.
"""

import multiprocessing

import pytest

from repro.runtime import LocalSpongeCluster
from repro.runtime.client import build_chain
from repro.runtime.local_cluster import runtime_task_id
from repro.sponge import SpongeConfig, SpongeFile

CHUNK = 64 * 1024


def _worker(worker_id, host, pool_dir, tracker_address, spill_dir,
            result_queue):
    chain = build_chain(
        host=host,
        tracker_address=tuple(tracker_address),
        spill_dir=spill_dir,
        local_pool_dir=pool_dir,
        config=SpongeConfig(chunk_size=CHUNK),
    )
    owner = runtime_task_id(host, f"worker{worker_id}")
    payload = bytes([worker_id]) * (5 * CHUNK)
    spongefile = SpongeFile(owner, chain, SpongeConfig(chunk_size=CHUNK))
    try:
        spongefile.write_all(payload)
        spongefile.close_sync()
        ok = spongefile.read_all() == payload
        spongefile.delete_sync()
        result_queue.put((worker_id, ok))
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        result_queue.put((worker_id, repr(exc)))


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_tasks_spill_without_corruption(workers, tmp_path):
    with LocalSpongeCluster(num_nodes=2, pool_size=8 * CHUNK,
                            chunk_size=CHUNK, poll_interval=0.1) as cluster:
        config = cluster.server_configs[0]
        queue = multiprocessing.Queue()
        processes = [
            multiprocessing.Process(
                target=_worker,
                args=(i + 1, config.host, config.pool_dir,
                      cluster.tracker_address,
                      str(tmp_path / f"spill{i}"), queue),
            )
            for i in range(workers)
        ]
        for process in processes:
            process.start()
        results = [queue.get(timeout=60) for _ in processes]
        for process in processes:
            process.join(timeout=30)
        failures = [r for r in results if r[1] is not True]
        assert not failures, failures
