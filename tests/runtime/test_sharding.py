"""The sharded sponge server: lifecycle, isolation, and failure scope.

Covers the shard-specific contracts on top of the protocol tests that
already run against sharded clusters unchanged:

* ``SO_REUSEPORT`` fallback — with the option disabled, shard 0 alone
  binds the shared node port, and the node address keeps answering;
* per-shard pool isolation — a chunk written through one shard does
  not exist on its siblings (private pool slices, no cross-shard
  leaks);
* scrape-merge equality — the cluster scrape equals the hand-merged
  per-shard snapshots (the associative MetricsSnapshot fold);
* shard-granular failure handling — killing one shard evicts exactly
  that shard's pooled connections and tracker entry, leaving its
  siblings' warm sockets and free-list entries alone;
* ``shards=1`` keeps the pre-sharding naming and layout byte for byte.
"""

import json
import os
import socket
import tempfile
import threading
import time

import pytest

from repro.errors import StoreUnavailableError
from repro.runtime import LocalSpongeCluster, protocol
from repro.runtime.client import RemoteServerStore, TrackerClient
from repro.runtime.connection_pool import ConnectionPool
from repro.runtime.sponge_server import (
    ServerConfig,
    SpongeServerProcess,
    reuseport_available,
)
from repro.sponge.chunk import TaskId

CHUNK = 64 * 1024
POOL = 4 * CHUNK
OWNER = {"owner_host": "client", "owner_task": f"pid:{os.getpid()}:shard"}


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture(scope="module")
def cluster():
    with LocalSpongeCluster(num_nodes=2, pool_size=POOL, chunk_size=CHUNK,
                            poll_interval=0.1, gc_interval=60.0,
                            shards=2) as cluster:
        yield cluster


# -- shard lifecycle / port strategy ------------------------------------------


class TestPortStrategy:
    def _shard_pair(self, tmp: str, reuseport):
        """Two in-process shards of one node sharing a node port."""
        node_port = _free_port()
        servers = []
        for k in range(2):
            config = ServerConfig(
                server_id=f"sponge@np/s{k}", host="np", rack="r0",
                port=_free_port(),
                pool_dir=os.path.join(tmp, f"pool-s{k}"),
                pool_size=POOL // 2, chunk_size=CHUNK,
                shard_index=k, num_shards=2, node_port=node_port,
                reuseport=reuseport, pool_exclusive=(k > 0),
            )
            servers.append(SpongeServerProcess(config))
        return node_port, servers

    def test_fallback_when_reuseport_disabled(self):
        with tempfile.TemporaryDirectory() as tmp:
            node_port, servers = self._shard_pair(tmp, reuseport=False)
            threads = []
            try:
                assert all(not s.reuseport_used for s in servers)
                for server in servers:
                    thread = threading.Thread(target=server.serve_forever,
                                              daemon=True)
                    thread.start()
                    threads.append(thread)
                # The node port still answers: shard 0 owns it plainly.
                deadline = time.monotonic() + 5
                reply = None
                while time.monotonic() < deadline:
                    try:
                        reply, _ = protocol.request(
                            ("127.0.0.1", node_port), {"op": "ping"},
                            timeout=0.5,
                        )
                        break
                    except OSError:
                        time.sleep(0.05)
                assert reply is not None and reply["ok"]
                assert reply["server_id"] == "sponge@np/s0"
            finally:
                for server in servers:
                    server.shutdown()
                for thread in threads:
                    thread.join(timeout=5)
                for server in servers:
                    server.close()

    def test_auto_mode_uses_reuseport_when_available(self):
        with tempfile.TemporaryDirectory() as tmp:
            _, servers = self._shard_pair(tmp, reuseport=None)
            try:
                expected = reuseport_available()
                assert all(s.reuseport_used == expected for s in servers)
            finally:
                for server in servers:
                    server.close()

    def test_cluster_runs_with_forced_fallback(self):
        with LocalSpongeCluster(num_nodes=1, pool_size=POOL,
                                chunk_size=CHUNK, poll_interval=0.1,
                                gc_interval=60.0, shards=2,
                                reuseport=False) as cluster:
            for shard in range(2):
                reply, _ = protocol.request(
                    cluster.server_address(0, shard=shard), {"op": "ping"}
                )
                assert reply["ok"]


class TestLegacyLayout:
    def test_shards_one_keeps_pre_sharding_naming(self):
        with LocalSpongeCluster(num_nodes=1, pool_size=POOL,
                                chunk_size=CHUNK, poll_interval=0.1,
                                gc_interval=60.0) as cluster:
            config = cluster.server_configs[0]
            assert config.server_id == "sponge@node0"
            assert config.pool_dir.endswith("pool-node0")
            assert config.node_port is None
            assert config.num_shards == 1
            assert not config.pool_exclusive
            assert config.pool_size == POOL

    def test_sharded_naming_and_slices(self, cluster):
        ids = [c.server_id for c in cluster.shard_configs[0]]
        assert ids == ["sponge@node0/s0", "sponge@node0/s1"]
        for k, config in enumerate(cluster.shard_configs[0]):
            assert config.pool_dir.endswith(f"pool-node0-s{k}")
            assert config.pool_size == POOL // 2
            assert config.pool_exclusive == (k > 0)
        # Shard 0's pool may be attached by local tasks, so only the
        # private slices skip the flock.


# -- per-shard pool isolation -------------------------------------------------


class TestPoolIsolation:
    def test_chunk_on_one_shard_invisible_on_sibling(self, cluster):
        reply, _ = protocol.request(
            cluster.server_address(0, shard=0),
            {"op": "alloc_write", **OWNER}, b"x" * CHUNK,
        )
        index = protocol.check_reply(reply)["index"]
        # Same index, sibling shard: its private pool never saw the
        # chunk — the read must fail, not leak another shard's bytes.
        reply, _ = protocol.request(
            cluster.server_address(0, shard=1),
            {"op": "read", "index": index, **OWNER},
        )
        assert not reply["ok"]
        # The owning shard still serves it.
        reply, payload = protocol.request(
            cluster.server_address(0, shard=0),
            {"op": "read", "index": index, **OWNER},
        )
        assert reply["ok"] and bytes(payload) == b"x" * CHUNK
        reply, _ = protocol.request(
            cluster.server_address(0, shard=0),
            {"op": "free", "index": index, **OWNER},
        )
        assert reply["ok"]

    def test_shards_are_independent_placement_targets(self, cluster):
        client = TrackerClient(cluster.tracker_address, cache_ttl=0.0)
        ids = {info.server_id for info in client.free_list()}
        assert {"sponge@node0/s0", "sponge@node0/s1",
                "sponge@node1/s0", "sponge@node1/s1"} <= ids


# -- scrape-merge equality ----------------------------------------------------


class TestScrapeMerge:
    def test_cluster_scrape_equals_per_shard_merge(self, cluster):
        # Traffic so the counters are non-trivial on several shards.
        for shard in range(2):
            reply, _ = protocol.request(
                cluster.server_address(1, shard=shard),
                {"op": "alloc_write", **OWNER}, b"m" * CHUNK,
            )
            index = protocol.check_reply(reply)["index"]
            protocol.request(
                cluster.server_address(1, shard=shard),
                {"op": "free", "index": index, **OWNER},
            )
        from repro.obs.metrics import MetricsSnapshot

        manual = MetricsSnapshot()
        for address in cluster.shard_addresses():
            manual = manual.merge(
                MetricsSnapshot.from_dict(protocol.fetch_stats(address))
            )
        scraped = cluster.scrape(include_local=False)
        # GC is effectively off (60 s interval) and nothing else writes,
        # so every server.* counter must agree exactly: the cluster
        # scrape is the per-shard fold, nothing more, nothing less.
        server_keys = {k for k in manual.counters if k.startswith("server.")}
        assert server_keys  # the traffic above registered
        for key in server_keys:
            assert scraped.counters.get(key) == manual.counters[key], key
        # Summed pool gauges: both views cover all four shard slices.
        assert (scraped.gauges["server.pool.free_bytes"]
                == manual.gauges["server.pool.free_bytes"])
        # Every shard reported itself as a distinct source.
        shard_ids = {c.server_id for node in cluster.shard_configs
                     for c in node}
        assert shard_ids <= set(scraped.sources)


# -- shard-granular failure handling (satellite: eviction) --------------------


class TestShardGranularEviction:
    def test_evict_drops_exactly_one_address(self, cluster):
        pool = ConnectionPool()
        try:
            addr0 = cluster.server_address(0, shard=0)
            addr1 = cluster.server_address(0, shard=1)
            pool.request(addr0, {"op": "ping"})
            pool.request(addr1, {"op": "ping"})
            assert pool.idle_count(addr0) == 1
            assert pool.idle_count(addr1) == 1
            assert pool.evict(addr1) == 1
            assert pool.idle_count(addr1) == 0
            assert pool.idle_count(addr0) == 1  # sibling untouched
        finally:
            pool.close()

    def test_dead_shard_evicts_only_its_connections(self):
        with LocalSpongeCluster(num_nodes=1, pool_size=POOL,
                                chunk_size=CHUNK, poll_interval=0.1,
                                gc_interval=60.0, shards=2) as cluster:
            pool = ConnectionPool(timeout=1.0)
            owner = TaskId(host="client",
                           task=f"pid:{os.getpid()}:evict")
            stores = [
                RemoteServerStore(
                    cluster.shard_configs[0][k].server_id,
                    cluster.server_address(0, shard=k),
                    timeout=1.0, pool=pool,
                )
                for k in range(2)
            ]
            try:
                handles = [store._write(owner, b"e" * CHUNK)
                           for store in stores]
                assert pool.idle_count(stores[0].address) == 1
                assert pool.idle_count(stores[1].address) == 1

                cluster.kill_server(0, shard=1)
                with pytest.raises(StoreUnavailableError):
                    stores[1]._write(owner, b"e" * CHUNK)
                # The dead shard's pooled socket is gone; the sibling
                # shard's warm socket survived and still works.
                assert pool.idle_count(stores[1].address) == 0
                assert pool.idle_count(stores[0].address) == 1
                assert (bytes(stores[0]._read(handles[0]))
                        == b"e" * CHUNK)
                assert pool.idle_count(stores[0].address) == 1
            finally:
                pool.close()

    def test_invalidate_server_is_shard_granular(self, cluster):
        client = TrackerClient(cluster.tracker_address, cache_ttl=30.0)
        before = {e["server_id"] for e in client._fetch()}
        assert "sponge@node0/s1" in before
        client.invalidate_server("sponge@node0/s1")
        after = {e["server_id"] for e in client._cached}
        assert after == before - {"sponge@node0/s1"}


# -- merged dump of a sharded cluster (satellite: obs.dump) -------------------


class TestClusterDump:
    def test_dump_cluster_spec_merges_all_shards(self, cluster, capsys):
        from repro.obs import dump

        spec = json.loads(cluster.cluster_spec_path.read_text())
        assert len(spec["servers"]) == 4  # 2 nodes x 2 shards
        rc = dump.main(["--cluster", str(cluster.cluster_spec_path)])
        captured = capsys.readouterr()
        assert rc == 0
        snapshot = json.loads(captured.out)
        sources = set(snapshot["sources"])
        assert {"sponge@node0/s0", "sponge@node0/s1", "sponge@node1/s0",
                "sponge@node1/s1", "tracker"} <= sources
