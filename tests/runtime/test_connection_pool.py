"""Connection pooling: reuse, health checks, and retry safety."""

import socketserver
import threading
import time

import pytest

from repro.errors import ProtocolError
from repro.runtime import protocol
from repro.runtime.connection_pool import ConnectionPool


class _Handler(socketserver.BaseRequestHandler):
    def handle(self):
        server = self.server
        with server.stats_lock:
            server.connections += 1
        sock = self.request
        while True:
            try:
                header, payload = protocol.recv_message(sock)
            except ProtocolError:
                return
            with server.stats_lock:
                server.requests += 1
            if server.mode == "mute":
                time.sleep(server.mute_for)
                return
            if server.barrier is not None:
                server.barrier.wait(timeout=5)
            protocol.send_message(
                sock, {"ok": True, "echo": header.get("op")}, payload
            )
            if server.mode == "oneshot":
                return


@pytest.fixture
def server():
    tcp = socketserver.ThreadingTCPServer(("127.0.0.1", 0), _Handler)
    tcp.daemon_threads = True
    tcp.connections = 0
    tcp.requests = 0
    tcp.stats_lock = threading.Lock()
    tcp.mode = "echo"
    tcp.mute_for = 1.0
    tcp.barrier = None
    thread = threading.Thread(target=tcp.serve_forever, daemon=True)
    thread.start()
    yield tcp
    tcp.shutdown()
    tcp.server_close()


def _address(server):
    return server.server_address


class TestReuse:
    def test_sequential_requests_share_one_connection(self, server):
        with ConnectionPool() as pool:
            for i in range(5):
                reply, payload = pool.request(
                    _address(server), {"op": f"r{i}"}, b"data"
                )
                assert reply["ok"] and bytes(payload) == b"data"
            assert server.connections == 1
            assert server.requests == 5
            assert pool.idle_count(_address(server)) == 1

    def test_payload_roundtrip_via_pool(self, server):
        blob = bytes(range(256)) * 1024  # 256 KB
        with ConnectionPool() as pool:
            _reply, payload = pool.request(_address(server), {"op": "d"}, blob)
            assert bytes(payload) == blob

    def test_idle_cap_enforced(self, server):
        server.barrier = threading.Barrier(2)
        with ConnectionPool(max_idle_per_address=1) as pool:
            results = []

            def one_request():
                results.append(pool.request(_address(server), {"op": "par"}))

            threads = [threading.Thread(target=one_request) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert len(results) == 2
            assert server.connections == 2  # both ran concurrently
            assert pool.idle_count(_address(server)) == 1  # one was dropped


class TestStaleness:
    def test_reconnects_after_peer_closed_idle_socket(self, server):
        server.mode = "oneshot"
        with ConnectionPool() as pool:
            pool.request(_address(server), {"op": "a"})
            # The server closed the connection after replying; the next
            # request must detect the stale socket (health check or
            # clean-close retry) and still succeed on a fresh one.
            time.sleep(0.05)
            reply, _ = pool.request(_address(server), {"op": "b"})
            assert reply["echo"] == "b"
            assert server.connections == 2

    def test_reply_timeout_is_not_retried(self, server):
        server.mode = "mute"
        with ConnectionPool(timeout=0.2) as pool:
            with pytest.raises(OSError):
                pool.request(_address(server), {"op": "slow"})
            # The request reached the server exactly once: a missing
            # reply must never be retried (it may have been processed).
            assert server.requests == 1

    def test_fresh_connection_failures_propagate(self):
        with ConnectionPool(timeout=0.2) as pool:
            with pytest.raises(OSError):
                pool.request(("127.0.0.1", 1), {"op": "nope"})


class TestForkAwareness:
    def test_forked_child_abandons_inherited_sockets(self, server):
        with ConnectionPool() as pool:
            pool.request(_address(server), {"op": "parent"})
            assert pool.idle_count() == 1
            pool._pid = -1  # simulate: this process is a fresh fork
            reply, _ = pool.request(_address(server), {"op": "child"})
            assert reply["ok"]
            # The inherited socket was discarded, not reused.
            assert server.connections == 2
