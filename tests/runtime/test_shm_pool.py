"""The mmap-backed sponge pool, including cross-process sharing."""

import multiprocessing

import pytest

from repro.errors import ConfigError, OutOfSpongeMemory, SpongeError
from repro.runtime.shm_pool import ForeignPoolView, MmapSpongePool
from repro.sponge.chunk import TaskId

CHUNK = 64 * 1024
OWNER = TaskId("hostA", "pid:1:writer")
OTHER = TaskId("hostB", "pid:2:other")


@pytest.fixture
def pool(tmp_path):
    with MmapSpongePool(tmp_path / "pool", create=True,
                        pool_size=8 * CHUNK, chunk_size=CHUNK) as pool:
        yield pool


class TestBasics:
    def test_layout(self, pool):
        assert pool.num_chunks == 8
        assert pool.free_chunks == 8
        assert pool.free_bytes == 8 * CHUNK

    def test_write_read_roundtrip(self, pool):
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"hello mmap")
        assert pool.read(index, OWNER) == b"hello mmap"

    def test_full_chunk(self, pool):
        index = pool.allocate(OWNER)
        data = bytes(range(256)) * (CHUNK // 256)
        pool.write(index, OWNER, data)
        assert pool.read(index) == data

    def test_oversized_write_rejected(self, pool):
        index = pool.allocate(OWNER)
        with pytest.raises(SpongeError):
            pool.write(index, OWNER, b"x" * (CHUNK + 1))

    def test_exhaustion(self, pool):
        for _ in range(8):
            pool.allocate(OWNER)
        with pytest.raises(OutOfSpongeMemory):
            pool.allocate(OWNER)

    def test_free_recycles(self, pool):
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"x")
        pool.free(index, OWNER)
        assert pool.free_chunks == 8
        assert pool.allocate(OTHER) == index

    def test_double_free_rejected(self, pool):
        index = pool.allocate(OWNER)
        pool.free(index, OWNER)
        with pytest.raises(SpongeError):
            pool.free(index, OWNER)

    def test_wrong_owner_rejected(self, pool):
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"mine")
        with pytest.raises(SpongeError):
            pool.write(index, OTHER, b"stolen")
        with pytest.raises(SpongeError):
            pool.read(index, OTHER)

    def test_owners_listed(self, pool):
        pool.allocate(OWNER)
        pool.allocate(OTHER)
        assert pool.owners() == {OWNER, OTHER}

    def test_collect_frees_dead(self, pool):
        pool.allocate(OWNER)
        pool.allocate(OTHER)
        freed = pool.collect(lambda owner: owner == OWNER)
        assert freed == 1
        assert pool.owners() == {OWNER}

    def test_attach_missing_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            MmapSpongePool(tmp_path / "nope")

    def test_multi_segment_layout(self, tmp_path):
        with MmapSpongePool(tmp_path / "pool", create=True,
                            pool_size=16 * CHUNK, chunk_size=CHUNK,
                            segment_size=4 * CHUNK) as pool:
            assert len(pool._segments) == 4
            # Chunks in different segments hold independent data.
            first = pool.allocate(OWNER)
            indices = [pool.allocate(OWNER) for _ in range(14)]
            last = pool.allocate(OWNER)
            pool.write(first, OWNER, b"first")
            pool.write(last, OWNER, b"last")
            assert pool.read(first) == b"first"
            assert pool.read(last) == b"last"


def _child_writes(pool_dir, result_queue):
    pool = MmapSpongePool(pool_dir)
    owner = TaskId("hostA", "pid:child:writer")
    index = pool.allocate(owner)
    pool.write(index, owner, b"written by child")
    result_queue.put(index)
    pool.close()


class TestCrossProcess:
    def test_child_writes_parent_reads(self, tmp_path):
        pool_dir = tmp_path / "pool"
        pool = MmapSpongePool(pool_dir, create=True,
                              pool_size=4 * CHUNK, chunk_size=CHUNK)
        queue = multiprocessing.Queue()
        child = multiprocessing.Process(
            target=_child_writes, args=(str(pool_dir), queue)
        )
        child.start()
        child.join(timeout=20)
        index = queue.get(timeout=5)
        assert pool.read(index) == b"written by child"
        assert pool.free_chunks == 3
        pool.close()

    def test_destroy_removes_files(self, tmp_path):
        pool_dir = tmp_path / "pool"
        pool = MmapSpongePool(pool_dir, create=True,
                              pool_size=2 * CHUNK, chunk_size=CHUNK)
        pool.destroy()
        assert not (pool_dir / "meta.dat").exists()
        assert not (pool_dir / "gens.dat").exists()


# -- slot generations and the pool epoch (SHM data plane) ---------------------


class TestGenerations:
    def test_new_pool_starts_at_generation_zero(self, pool):
        assert all(pool.generation(i) == 0 for i in range(pool.num_chunks))

    def test_free_bumps_the_generation(self, pool):
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"x")
        before = pool.generation(index)
        pool.free(index, OWNER)
        assert pool.generation(index) == before + 1
        # Reallocation does not bump: a grant taken against the new
        # incarnation stays valid until the *next* free.
        assert pool.allocate(OTHER) == index
        assert pool.generation(index) == before + 1

    def test_collect_bumps_the_generation(self, pool):
        index = pool.allocate(OWNER)
        assert pool.collect(lambda owner: False) == 1
        assert pool.generation(index) == 1

    def test_out_of_range_generation_rejected(self, pool):
        with pytest.raises(SpongeError):
            pool.generation(pool.num_chunks)

    def test_epoch_survives_reattach(self, tmp_path):
        pool_dir = tmp_path / "pool"
        pool = MmapSpongePool(pool_dir, create=True,
                              pool_size=2 * CHUNK, chunk_size=CHUNK)
        epoch = pool.epoch
        index = pool.allocate(OWNER)
        pool.free(index, OWNER)
        pool.close()
        again = MmapSpongePool(pool_dir)
        # Same files, same epoch — and the generation table persisted,
        # so grants spanning a server restart stay comparable.
        assert again.epoch == epoch
        assert again.generation(index) == 1
        again.close()

    def test_recreate_changes_the_epoch(self, tmp_path):
        pool_dir = tmp_path / "pool"
        pool = MmapSpongePool(pool_dir, create=True,
                              pool_size=2 * CHUNK, chunk_size=CHUNK)
        epoch = pool.epoch
        pool.destroy()
        fresh = MmapSpongePool(pool_dir, create=True,
                               pool_size=2 * CHUNK, chunk_size=CHUNK)
        assert fresh.epoch != epoch  # a stale attach cannot go unnoticed
        fresh.destroy()


class TestForeignPoolView:
    def view(self, pool, **kwargs):
        return ForeignPoolView(pool.directory, chunk_size=pool.chunk_size,
                               num_chunks=pool.num_chunks,
                               chunks_per_segment=pool.chunks_per_segment,
                               **kwargs)

    def test_reads_what_the_owner_wrote(self, pool):
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"owner bytes")
        with self.view(pool, epoch=pool.epoch) as view:
            assert bytes(view.chunk_view(index, 11)) == b"owner bytes"
            assert view.generation(index) == pool.generation(index)
            assert view.epoch == pool.epoch

    def test_writable_view_is_visible_to_the_owner(self, pool):
        index = pool.allocate(OWNER)
        with self.view(pool, writable=True) as view:
            view.chunk_view(index, 12)[:] = b"foreign fill"
        pool.commit_write(index, OWNER, 12)
        assert bytes(pool.read(index, OWNER)) == b"foreign fill"

    def test_readonly_view_rejects_stores(self, pool):
        index = pool.allocate(OWNER)
        with self.view(pool) as view:
            with pytest.raises((TypeError, ValueError)):
                view.chunk_view(index, 4)[:] = b"nope"

    def test_advertised_epoch_must_match(self, pool):
        with pytest.raises(SpongeError):
            self.view(pool, epoch="00" * 8)

    def test_multi_segment_geometry(self, tmp_path):
        with MmapSpongePool(tmp_path / "pool", create=True,
                            pool_size=8 * CHUNK, chunk_size=CHUNK,
                            segment_size=2 * CHUNK) as pool:
            first = pool.allocate(OWNER)
            for _ in range(6):
                pool.allocate(OWNER)
            last = pool.allocate(OWNER)
            pool.write(first, OWNER, b"first")
            pool.write(last, OWNER, b"last")
            with self.view(pool, epoch=pool.epoch) as view:
                assert bytes(view.chunk_view(first, 5)) == b"first"
                assert bytes(view.chunk_view(last, 4)) == b"last"

    def test_bounds_checked(self, pool):
        with self.view(pool) as view:
            with pytest.raises(SpongeError):
                view.chunk_view(pool.num_chunks)
            with pytest.raises(SpongeError):
                view.chunk_view(0, CHUNK + 1)
