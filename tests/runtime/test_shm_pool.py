"""The mmap-backed sponge pool, including cross-process sharing."""

import multiprocessing

import pytest

from repro.errors import ConfigError, OutOfSpongeMemory, SpongeError
from repro.runtime.shm_pool import MmapSpongePool
from repro.sponge.chunk import TaskId

CHUNK = 64 * 1024
OWNER = TaskId("hostA", "pid:1:writer")
OTHER = TaskId("hostB", "pid:2:other")


@pytest.fixture
def pool(tmp_path):
    with MmapSpongePool(tmp_path / "pool", create=True,
                        pool_size=8 * CHUNK, chunk_size=CHUNK) as pool:
        yield pool


class TestBasics:
    def test_layout(self, pool):
        assert pool.num_chunks == 8
        assert pool.free_chunks == 8
        assert pool.free_bytes == 8 * CHUNK

    def test_write_read_roundtrip(self, pool):
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"hello mmap")
        assert pool.read(index, OWNER) == b"hello mmap"

    def test_full_chunk(self, pool):
        index = pool.allocate(OWNER)
        data = bytes(range(256)) * (CHUNK // 256)
        pool.write(index, OWNER, data)
        assert pool.read(index) == data

    def test_oversized_write_rejected(self, pool):
        index = pool.allocate(OWNER)
        with pytest.raises(SpongeError):
            pool.write(index, OWNER, b"x" * (CHUNK + 1))

    def test_exhaustion(self, pool):
        for _ in range(8):
            pool.allocate(OWNER)
        with pytest.raises(OutOfSpongeMemory):
            pool.allocate(OWNER)

    def test_free_recycles(self, pool):
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"x")
        pool.free(index, OWNER)
        assert pool.free_chunks == 8
        assert pool.allocate(OTHER) == index

    def test_double_free_rejected(self, pool):
        index = pool.allocate(OWNER)
        pool.free(index, OWNER)
        with pytest.raises(SpongeError):
            pool.free(index, OWNER)

    def test_wrong_owner_rejected(self, pool):
        index = pool.allocate(OWNER)
        pool.write(index, OWNER, b"mine")
        with pytest.raises(SpongeError):
            pool.write(index, OTHER, b"stolen")
        with pytest.raises(SpongeError):
            pool.read(index, OTHER)

    def test_owners_listed(self, pool):
        pool.allocate(OWNER)
        pool.allocate(OTHER)
        assert pool.owners() == {OWNER, OTHER}

    def test_collect_frees_dead(self, pool):
        pool.allocate(OWNER)
        pool.allocate(OTHER)
        freed = pool.collect(lambda owner: owner == OWNER)
        assert freed == 1
        assert pool.owners() == {OWNER}

    def test_attach_missing_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            MmapSpongePool(tmp_path / "nope")

    def test_multi_segment_layout(self, tmp_path):
        with MmapSpongePool(tmp_path / "pool", create=True,
                            pool_size=16 * CHUNK, chunk_size=CHUNK,
                            segment_size=4 * CHUNK) as pool:
            assert len(pool._segments) == 4
            # Chunks in different segments hold independent data.
            first = pool.allocate(OWNER)
            indices = [pool.allocate(OWNER) for _ in range(14)]
            last = pool.allocate(OWNER)
            pool.write(first, OWNER, b"first")
            pool.write(last, OWNER, b"last")
            assert pool.read(first) == b"first"
            assert pool.read(last) == b"last"


def _child_writes(pool_dir, result_queue):
    pool = MmapSpongePool(pool_dir)
    owner = TaskId("hostA", "pid:child:writer")
    index = pool.allocate(owner)
    pool.write(index, owner, b"written by child")
    result_queue.put(index)
    pool.close()


class TestCrossProcess:
    def test_child_writes_parent_reads(self, tmp_path):
        pool_dir = tmp_path / "pool"
        pool = MmapSpongePool(pool_dir, create=True,
                              pool_size=4 * CHUNK, chunk_size=CHUNK)
        queue = multiprocessing.Queue()
        child = multiprocessing.Process(
            target=_child_writes, args=(str(pool_dir), queue)
        )
        child.start()
        child.join(timeout=20)
        index = queue.get(timeout=5)
        assert pool.read(index) == b"written by child"
        assert pool.free_chunks == 3
        pool.close()

    def test_destroy_removes_files(self, tmp_path):
        pool_dir = tmp_path / "pool"
        pool = MmapSpongePool(pool_dir, create=True,
                              pool_size=2 * CHUNK, chunk_size=CHUNK)
        pool.destroy()
        assert not (pool_dir / "meta.dat").exists()
