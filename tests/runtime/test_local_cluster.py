"""Integration tests of the real multi-process runtime.

These spin up actual sponge-server and tracker processes on localhost
(TCP + mmap pools) and exercise the same SpongeFile core the simulator
uses — write/read/delete, remote overflow, staleness fallback, quotas,
and garbage collection of crashed tasks.
"""

import multiprocessing
import time

import pytest

from repro.errors import QuotaExceededError
from repro.runtime import LocalSpongeCluster
from repro.runtime.client import build_chain
from repro.sponge import ChunkLocation, SpongeConfig, SpongeFile
from repro.sponge.chunk import TaskId

CHUNK = 64 * 1024
POOL = 4 * CHUNK  # 4 chunks per node


@pytest.fixture(scope="module")
def cluster():
    with LocalSpongeCluster(num_nodes=3, pool_size=POOL, chunk_size=CHUNK,
                            poll_interval=0.1, gc_interval=0.3) as cluster:
        yield cluster


def make_file(cluster, node=0, label="t", config=None):
    config = config or SpongeConfig(chunk_size=CHUNK)
    chain = cluster.chain(node, config=config)
    owner = cluster.task_id(node, label)
    return SpongeFile(owner, chain, config)


class TestEndToEnd:
    def test_local_then_remote_placement(self, cluster):
        sf = make_file(cluster, label="overflow")
        payload = bytes(range(256)) * 1536  # 6 chunks
        sf.write_all(payload)
        sf.close_sync()
        locations = [h.location for h in sf.handles]
        assert locations.count(ChunkLocation.LOCAL_MEMORY) == 4
        assert locations.count(ChunkLocation.REMOTE_MEMORY) == 2
        assert sf.read_all() == payload
        sf.delete_sync()

    def test_delete_returns_chunks_everywhere(self, cluster):
        sf = make_file(cluster, label="cleanup")
        sf.write_all(b"z" * (6 * CHUNK))
        sf.close_sync()
        sf.delete_sync()
        from repro.runtime.client import TrackerClient

        time.sleep(0.3)  # let the tracker re-poll
        client = TrackerClient(cluster.tracker_address)
        free = {info.host: info.free_bytes for info in client.free_list()}
        assert all(v == POOL for v in free.values())

    def test_disk_fallback_when_cluster_full(self, cluster, tmp_path):
        # 3 nodes x 4 chunks = 12 chunks; write 16.
        sf = make_file(cluster, label="big")
        payload = b"q" * (16 * CHUNK)
        sf.write_all(payload)
        sf.close_sync()
        locations = {h.location for h in sf.handles}
        assert ChunkLocation.LOCAL_DISK in locations
        assert sf.read_all() == payload
        sf.delete_sync()

    def test_two_tasks_share_the_pools(self, cluster):
        first = make_file(cluster, node=0, label="one")
        second = make_file(cluster, node=1, label="two")
        first.write_all(b"a" * (2 * CHUNK))
        second.write_all(b"b" * (2 * CHUNK))
        first.close_sync()
        second.close_sync()
        assert first.read_all() == b"a" * (2 * CHUNK)
        assert second.read_all() == b"b" * (2 * CHUNK)
        first.delete_sync()
        second.delete_sync()


def _crash_after_spill(host, pool_dir, tracker_address, spill_dir):
    chain = build_chain(
        host=host,
        tracker_address=tuple(tracker_address),
        spill_dir=spill_dir,
        local_pool_dir=pool_dir,
        config=SpongeConfig(chunk_size=CHUNK),
    )
    from repro.runtime.local_cluster import runtime_task_id

    owner = runtime_task_id(host, "leaky")
    leak = SpongeFile(owner, chain, SpongeConfig(chunk_size=CHUNK))
    leak.write_all(b"orphan" * (CHUNK // 2))
    leak.close_sync()
    # exit without delete -> orphaned chunks


class TestGarbageCollection:
    def test_crashed_task_chunks_reclaimed(self, cluster):
        config = cluster.server_configs[2]
        child = multiprocessing.Process(
            target=_crash_after_spill,
            args=(config.host, config.pool_dir, cluster.tracker_address,
                  str(cluster.workdir / "gc-spill")),
        )
        child.start()
        child.join(timeout=30)
        assert child.exitcode == 0
        freed = 0
        deadline = time.time() + 15
        while time.time() < deadline and freed == 0:
            freed = cluster.request_gc(2)
            time.sleep(0.1)
        assert freed > 0


class TestQuota:
    def test_server_side_quota_enforced(self):
        with LocalSpongeCluster(
            num_nodes=2, pool_size=8 * CHUNK, chunk_size=CHUNK,
            poll_interval=0.1, quota_per_node=2 * CHUNK,
        ) as cluster:
            # Spill remotely only (no local pool attachment): the peer
            # server must cut this task off after 2 chunks.
            config = SpongeConfig(chunk_size=CHUNK)
            chain = cluster.chain(0, config=config, attach_local_pool=False)
            owner = cluster.task_id(0, "greedy")
            sf = SpongeFile(owner, chain, config)
            with pytest.raises(QuotaExceededError):
                sf.write_all(b"x" * (8 * CHUNK))
                sf.close_sync()
