"""Tracker rate-state hygiene: `_alloc_seen`/`_alloc_rates` pruning.

The tracker derives per-server allocation rates by differencing
cumulative counters between polls.  Servers that drop out of a poll
(dead, restarting, removed from config) must also drop out of the
rate-state dicts: otherwise the baselines accumulate forever, and a
server returning after a long death would difference against its
ancient pre-crash counter.
"""

import socket
import threading

from repro.obs.metrics import Ewma
from repro.runtime import protocol
from repro.runtime.tracker_server import TrackerConfig, TrackerServerProcess


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class FakeSpongeServer:
    """A thread answering ``free_bytes`` with a settable alloc_count."""

    def __init__(self):
        self.alloc_count = 0
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self.address = self._listener.getsockname()
        self._stop = False
        self._conns = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self._conns.append(conn)
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn):
        with conn:
            while True:
                try:
                    header, _ = protocol.recv_message(conn)
                except Exception:  # noqa: BLE001 - client went away
                    return
                if header.get("op") != "free_bytes":
                    protocol.send_message(
                        conn, protocol.error_reply("unknown op"))
                    continue
                protocol.send_message(conn, {
                    "ok": True,
                    "free_bytes": 1 << 20,
                    "alloc_count": self.alloc_count,
                    "host": "h0",
                    "rack": "rack0",
                })

    def close(self):
        self._stop = True
        self._listener.close()
        for conn in self._conns:
            # shutdown() interrupts the handler thread blocked in recv
            # (a bare close() would leave the TCP connection alive).
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


def make_tracker(servers):
    return TrackerServerProcess(TrackerConfig(
        port=_free_port(), servers=servers))


def shutdown(tracker):
    tracker._tcp.server_close()
    tracker._poll_pool.close()


def test_poll_prunes_rate_state_of_vanished_servers():
    dead_address = ("127.0.0.1", _free_port())  # nothing listens here
    tracker = make_tracker({
        "dead@h9": {"address": dead_address, "host": "h9", "rack": "rack0"},
    })
    try:
        # State left behind by earlier polls: one entry for the server
        # still configured but dead, one for a server long removed.
        tracker._alloc_seen["dead@h9"] = (100, 0.0)
        tracker._alloc_rates["dead@h9"] = Ewma(alpha=0.3)
        tracker._alloc_seen["removed@h8"] = (7, 0.0)
        tracker._alloc_rates["removed@h8"] = Ewma(alpha=0.3)
        tracker.poll_once()
        assert tracker.snapshot() == []
        assert tracker._alloc_seen == {}
        assert tracker._alloc_rates == {}
    finally:
        shutdown(tracker)


def test_live_server_state_survives_while_stale_state_is_pruned():
    server = FakeSpongeServer()
    tracker = make_tracker({
        "live@h0": {"address": server.address, "host": "h0", "rack": "rack0"},
    })
    try:
        tracker._alloc_seen["ghost@h7"] = (999, 0.0)
        tracker._alloc_rates["ghost@h7"] = Ewma(alpha=0.3)
        server.alloc_count = 10
        tracker.poll_once()
        server.alloc_count = 30
        tracker.poll_once()
        assert [e["server_id"] for e in tracker.snapshot()] == ["live@h0"]
        # The live server's differencing baseline is intact (a pruned
        # baseline would have reset and reported rate 0.0 forever)...
        assert tracker._alloc_seen["live@h0"][0] == 30
        assert tracker._alloc_rates["live@h0"].value > 0.0
        # ...while the ghost's state is gone.
        assert "ghost@h7" not in tracker._alloc_seen
        assert "ghost@h7" not in tracker._alloc_rates
    finally:
        shutdown(tracker)
        server.close()


def test_server_returning_after_death_restarts_its_baseline():
    server = FakeSpongeServer()
    config_servers = {
        "flappy@h0": {"address": server.address, "host": "h0",
                      "rack": "rack0"},
    }
    tracker = make_tracker(config_servers)
    try:
        server.alloc_count = 1000
        tracker.poll_once()
        assert tracker._alloc_seen["flappy@h0"][0] == 1000
        # The server dies: its address stops answering.  (Repointing
        # the config at a never-bound port models the restart cleanly —
        # tearing down a threaded listener mid-test is racy.)
        config_servers["flappy@h0"]["address"] = ("127.0.0.1", _free_port())
        tracker.poll_once()
        assert "flappy@h0" not in tracker._alloc_seen
        # ...and comes back restarted, counters reset to near zero.
        reborn = FakeSpongeServer()
        config_servers["flappy@h0"]["address"] = reborn.address
        try:
            reborn.alloc_count = 5
            tracker.poll_once()
            # Fresh baseline: the first sighting never differences
            # against the pre-crash count of 1000.
            assert tracker._alloc_seen["flappy@h0"][0] == 5
            assert tracker._alloc_rates["flappy@h0"].value == 0.0
        finally:
            reborn.close()
    finally:
        shutdown(tracker)
        server.close()
