"""Multi-tenant QoS over the real runtime (processes + TCP + mmap).

One greedy tenant fills every node's pool through the servers; a
weighted victim tenant then writes, which must trigger pressure
demotion of the greedy tenant's cold chunks rather than pushing the
victim to disk.  Everybody's bytes stay readable — demoted chunks are
served from the server's demote tier, and survive a server restart via
the on-disk demote directory.
"""

import pytest

from repro.runtime import LocalSpongeCluster
from repro.runtime.client import build_chain
from repro.sponge import ChunkLocation, SpongeConfig, SpongeFile

CHUNK = 32 * 1024
POOL_CHUNKS = 4
POOL = POOL_CHUNKS * CHUNK


@pytest.fixture(scope="module")
def cluster():
    with LocalSpongeCluster(num_nodes=2, pool_size=POOL, chunk_size=CHUNK,
                            poll_interval=0.1, gc_interval=30.0,
                            qos_high_water=0.85) as cluster:
        yield cluster


def greedy_chain(cluster, config):
    """A chain whose host matches no server.

    The allocation chain never places chunks on the writer's own host,
    so a chain built with a fabricated host can fill *every* node's
    pool through the servers — making all of its chunks
    server-accounted and therefore demotable.
    """
    return build_chain(
        host="qos-test-client",
        tracker_address=cluster.tracker_address,
        spill_dir=cluster.workdir / "spill-greedy",
        local_pool_dir=None,
        config=config,
    )


def test_victim_write_demotes_greedy_instead_of_spilling(cluster):
    config = SpongeConfig(chunk_size=CHUNK)
    greedy = SpongeFile(cluster.task_id(0, "greedy"),
                        greedy_chain(cluster, config), config)
    # More than both pools hold (2 nodes x 4 chunks): the overflow
    # defers and lands on the greedy tenant's own disk tier.
    greedy_payload = bytes(range(256)) * (10 * CHUNK // 256)
    greedy.write_all(greedy_payload)
    greedy.close_sync()
    assert any(h.location == ChunkLocation.REMOTE_MEMORY
               for h in greedy.handles)

    # The victim carries an explicit weight over the wire and goes
    # through the server path (no local pool attachment).
    victim_config = SpongeConfig(chunk_size=CHUNK, tenant_weight=2.0)
    victim_chain = cluster.chain(0, config=victim_config,
                                 attach_local_pool=False)
    victim = SpongeFile(cluster.task_id(0, "victim-w1"), victim_chain,
                        victim_config)
    victim_payload = b"V" * (2 * CHUNK)
    victim.write_all(victim_payload)
    victim.close_sync()

    # The victim stayed in sponge memory: pressure was relieved by
    # demoting the greedy tenant's cold chunks, not by refusing.
    assert all(h.location == ChunkLocation.REMOTE_MEMORY
               for h in victim.handles)
    counters = cluster.scrape().to_dict()["counters"]
    assert counters.get("qos.demotions", 0) > 0
    assert counters.get("quota.release_underflow", 0) == 0

    # Everyone reads back byte-exact — the greedy tenant's demoted
    # chunks come from the servers' demote tier.
    assert victim.read_all() == victim_payload
    assert greedy.read_all() == greedy_payload
    after_read = cluster.scrape().to_dict()["counters"]
    assert after_read.get("qos.demoted_reads", 0) > 0

    # Per-tenant usage gauges are exported for operators.
    gauges = cluster.scrape().to_dict()["gauges"]
    tenant_gauges = [k for k in gauges if k.startswith("qos.tenant.usage.")]
    assert any(k.endswith(".greedy") for k in tenant_gauges)

    # Demoted chunks persist in the server's demote directory: a
    # restart (pools kept) rebuilds them and reads still succeed.
    cluster.restart_server(0)
    cluster.restart_server(1)
    assert greedy.read_all() == greedy_payload
    assert victim.read_all() == victim_payload

    victim.delete_sync()
    greedy.delete_sync()


def test_weight_header_only_sent_when_non_default(cluster):
    from repro.runtime import protocol

    assert "tenant_weight" not in protocol.encode_owner("h", "t")
    assert "tenant_weight" not in protocol.encode_owner("h", "t", 1.0)
    assert protocol.encode_owner("h", "t", 2.5)["tenant_weight"] == 2.5
