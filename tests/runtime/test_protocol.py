"""Wire protocol framing and error mapping."""

import socket
import threading

import pytest

from repro.errors import (
    ChunkLostError,
    OutOfSpongeMemory,
    ProtocolError,
    QuotaExceededError,
    RuntimeBackendError,
)
from repro.runtime import protocol


def socket_pair():
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    accepted, _ = server.accept()
    server.close()
    return client, accepted


class TestFraming:
    def test_roundtrip_header_and_payload(self):
        client, server = socket_pair()
        try:
            protocol.send_message(client, {"op": "x", "n": 3}, b"\x00\x01")
            header, payload = protocol.recv_message(server)
            assert header["op"] == "x"
            assert header["n"] == 3
            assert header["payload_len"] == 2
            assert payload == b"\x00\x01"
        finally:
            client.close()
            server.close()

    def test_empty_payload(self):
        client, server = socket_pair()
        try:
            protocol.send_message(client, {"op": "ping"})
            header, payload = protocol.recv_message(server)
            assert payload == b""
        finally:
            client.close()
            server.close()

    def test_large_binary_payload(self):
        client, server = socket_pair()
        blob = bytes(range(256)) * 4096  # 1 MB
        received = {}

        def reader():
            received["msg"] = protocol.recv_message(server)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            protocol.send_message(client, {"op": "data"}, blob)
            thread.join(timeout=10)
            _header, payload = received["msg"]
            assert payload == blob
        finally:
            client.close()
            server.close()

    def test_truncated_stream_raises(self):
        client, server = socket_pair()
        try:
            client.sendall(b"\x00\x00\x00\x10partial")
            client.close()
            with pytest.raises(ProtocolError):
                protocol.recv_message(server)
        finally:
            server.close()

    def test_malformed_header_raises(self):
        client, server = socket_pair()
        try:
            raw = b"not json!!"
            client.sendall(len(raw).to_bytes(4, "big") + raw)
            with pytest.raises(ProtocolError):
                protocol.recv_message(server)
        finally:
            client.close()
            server.close()

    def test_oversized_header_rejected(self):
        client, server = socket_pair()
        try:
            client.sendall((protocol.MAX_HEADER + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                protocol.recv_message(server)
        finally:
            client.close()
            server.close()


class TestErrorMapping:
    def test_ok_reply_passes_through(self):
        assert protocol.check_reply({"ok": True, "x": 1})["x"] == 1

    @pytest.mark.parametrize(
        "code,exc",
        [
            ("out-of-memory", OutOfSpongeMemory),
            ("quota", QuotaExceededError),
            ("chunk-lost", ChunkLostError),
            ("error", RuntimeBackendError),
            ("unknown-code", RuntimeBackendError),
        ],
    )
    def test_error_codes_map_to_exceptions(self, code, exc):
        reply = protocol.error_reply("boom", code)
        with pytest.raises(exc, match="boom"):
            protocol.check_reply(reply)
