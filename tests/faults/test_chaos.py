"""The chaos harness: determinism of the schedule, and a seeded run.

The soak property the suite enforces: under a randomized-but-seeded
mix of every fault class plus server/tracker kill-restarts, concurrent
writers never observe corrupted or duplicated data, only classified
failures — and the pools come back fully free once every task is dead.
"""

import pytest

from repro.faults.chaos import (
    ChaosSettings,
    build_events,
    build_fault_plan,
    describe_schedule,
    payload_for,
    run_chaos,
)

SMOKE = ChaosSettings(seed=1302, writers=2, rounds=2, num_nodes=3)


def test_schedule_is_a_pure_function_of_the_seed():
    assert describe_schedule(SMOKE) == describe_schedule(SMOKE)
    other = ChaosSettings(seed=SMOKE.seed + 1, writers=2, rounds=2)
    assert describe_schedule(SMOKE) != describe_schedule(other)


def test_schedule_covers_every_fault_class():
    sites = {rule.site for rule in build_fault_plan(SMOKE).rules}
    # ISSUE acceptance: at least 6 distinct fault classes in play.
    assert {"server.alloc", "conn.send", "tracker.free_list",
            "tracker.poll", "server.free_bytes", "disk.write",
            "server.read"} <= sites
    assert build_events(SMOKE)  # kill/restart events scheduled too


def test_payloads_are_deterministic_and_distinct():
    assert payload_for(3, 1, 2, 1000) == payload_for(3, 1, 2, 1000)
    assert payload_for(3, 1, 2, 1000) != payload_for(3, 2, 2, 1000)
    assert payload_for(4, 1, 2, 1000) != payload_for(3, 1, 2, 1000)
    assert len(payload_for(3, 1, 2, 999)) == 999


def test_sharded_schedule_is_deterministic_and_targets_shards():
    sharded = ChaosSettings(seed=1302, writers=2, rounds=2, num_nodes=3,
                            shards=2)
    assert describe_schedule(sharded) == describe_schedule(sharded)
    server_events = [e for e in build_events(sharded)
                     if e[0] == "server"]
    assert server_events
    # With shards > 1 every server event carries its target shard.
    for event in server_events:
        assert len(event) == 4
        assert 0 <= event[3] < sharded.shards


def test_unsharded_schedule_is_unchanged_by_the_shard_field():
    # shards=1 must reproduce the historical schedule byte for byte:
    # same 3-tuple events, same description, as before sharding existed.
    for event in build_events(SMOKE):
        if event[0] == "server":
            assert len(event) == 3
    explicit = ChaosSettings(seed=1302, writers=2, rounds=2, num_nodes=3,
                             shards=1)
    assert describe_schedule(explicit) == describe_schedule(SMOKE)


@pytest.mark.slow
def test_sharded_seeded_chaos_run_holds_the_invariants():
    report = run_chaos(ChaosSettings(seed=3, writers=2, rounds=2,
                                     num_nodes=2, shards=2))
    assert report.ok, report.summary()
    assert report.rounds_ok >= 1
    assert any("shard" in line for line in report.events)


@pytest.mark.slow
def test_seeded_chaos_run_holds_the_invariants():
    report = run_chaos(SMOKE)
    assert report.ok, report.summary()
    assert report.rounds_ok >= 1
    assert report.events  # servers/tracker really were bounced


@pytest.mark.slow
def test_same_seed_same_verdict():
    first = run_chaos(ChaosSettings(seed=7, writers=2, rounds=2))
    second = run_chaos(ChaosSettings(seed=7, writers=2, rounds=2))
    assert first.schedule == second.schedule
    assert first.ok == second.ok


# -- coded-spill regression -------------------------------------------------
#
# Seed 448 is the pinned demonstration pair: its schedule wipes a pool
# under live spills such that without redundancy a reader observes a
# classified ``ChunkLostError``, and with xor 2+1 coding the very same
# schedule degrades to reconstruction — zero lost-chunk violations,
# every round's read byte-exact.  The seed was chosen by scanning for
# a schedule where the loss actually lands on a spilled member (most
# seeds' wipes miss, or placement dodges them) and verified stable
# across repeated trials.

RED_PAIR = dict(seed=448, writers=2, rounds=2, num_nodes=3)


def test_redundancy_fields_do_not_change_the_schedule():
    # The verdict flip must be attributable to coding alone: the fault
    # plan and kill/restart schedule are a pure function of the seed,
    # blind to the redundancy knobs.
    off = ChaosSettings(**RED_PAIR)
    on = ChaosSettings(**RED_PAIR, redundancy="xor", redundancy_k=2)
    assert describe_schedule(off) == describe_schedule(on)
    mirrored = ChaosSettings(**RED_PAIR, redundancy="mirror")
    assert describe_schedule(off) == describe_schedule(mirrored)


def test_shm_data_plane_does_not_change_the_schedule():
    # The SHM data plane must face the identical fault and kill
    # schedule as the socket path: its rules are appended with fixed
    # parameters after every seed-dependent draw, so pinned seeds keep
    # meaning what they meant and any verdict change between off/write/
    # rw runs is attributable to the data plane alone.
    off = ChaosSettings(**RED_PAIR)
    for mode in ("write", "rw"):
        plane = ChaosSettings(**RED_PAIR, shm_data_plane=mode)
        assert describe_schedule(off) == describe_schedule(plane)
    stacked = ChaosSettings(**RED_PAIR, shm_data_plane="rw",
                            shards=2, compression="adaptive",
                            redundancy="xor", redundancy_k=2)
    blind = ChaosSettings(**RED_PAIR, shards=2, compression="adaptive",
                          redundancy="xor", redundancy_k=2)
    assert describe_schedule(stacked) == describe_schedule(blind)


def test_shm_sites_are_always_scheduled():
    sites = {rule.site for rule in build_fault_plan(SMOKE).rules}
    assert {"shm.attach", "shm.commit", "shm.read_grant"} <= sites


def test_read_parallelism_does_not_change_the_schedule():
    # The parallel read pipeline (decode fan-out, striped prefetch,
    # concurrent reconstruction) must face the identical fault and
    # kill schedule as the legacy serial reader: any verdict change
    # between runs is attributable to the read path alone.
    serial = ChaosSettings(**RED_PAIR)
    for depth in (2, 4, 8):
        parallel = ChaosSettings(**RED_PAIR, read_parallelism=depth)
        assert describe_schedule(serial) == describe_schedule(parallel)
    combined = ChaosSettings(**RED_PAIR, read_parallelism=8,
                             batch_depth=4, compression="adaptive")
    blind = ChaosSettings(**RED_PAIR, read_parallelism=1,
                          batch_depth=4, compression="adaptive")
    assert describe_schedule(combined) == describe_schedule(blind)


@pytest.mark.slow
def test_node_loss_without_redundancy_is_a_classified_chunk_loss():
    report = run_chaos(ChaosSettings(**RED_PAIR))
    assert report.ok, report.summary()
    assert any("ChunkLostError" in line for line in report.expected_failures)


@pytest.mark.slow
def test_same_node_loss_with_xor_redundancy_degrades_to_reconstruction():
    report = run_chaos(ChaosSettings(**RED_PAIR, redundancy="xor",
                                     redundancy_k=2))
    assert report.ok, report.summary()
    assert not report.violations, report.violations
    # Every writer/round read back byte-exact despite the wipe ...
    assert report.rounds_ok == RED_PAIR["writers"] * RED_PAIR["rounds"]
    assert any("(pool wiped)" in line for line in report.events)
    # ... and at least one chunk really was rebuilt from its group, so
    # the pass is degraded-read coding at work, not placement luck.
    counters = report.metrics.get("counters", {})
    assert counters.get("redundancy.reconstructions", 0) >= 1


# -- antagonist mode (multi-tenant QoS) ---------------------------------------
#
# Seed 11 is the pinned demonstration pair: with QoS off, the greedy
# tenant fills every pool and drives the victims' writes to their disk
# tiers every round; with QoS on (weighted-fair admission + pressure
# demotion) the same seed keeps every victim round in sponge memory and
# byte-exact while the greedy tenant's cold chunks get demoted.
# Verified stable across repeated trials (off ~36 victim disk spills,
# on 0 with several demotions — ample margin under the 0.5 bound).

from repro.faults.chaos import (  # noqa: E402
    ANTAGONIST_SPILL_BOUND,
    AntagonistReport,
    AntagonistSettings,
    _disk_spills,
    compare_antagonist,
    run_antagonist_pair,
)

ANT_PAIR = AntagonistSettings(seed=11, victims=3, rounds=4, num_nodes=2,
                              greedy_files=4)


def test_disk_spills_sums_only_disk_tier_counters():
    result = {"metrics": {"counters": {
        "alloc.outcome.local-disk": 3,
        "alloc.outcome.dfs": 2,
        "alloc.outcome.remote-memory": 99,
    }}}
    assert _disk_spills(result) == 5
    assert _disk_spills({}) == 0
    assert _disk_spills({"metrics": None}) == 0


def _clean_pair(off_spills=30, on_spills=0):
    settings = AntagonistSettings(seed=1, victims=2, rounds=2)
    off = AntagonistReport(seed=1, qos=False, victim_rounds_ok=4,
                           victim_disk_spills=off_spills)
    on = AntagonistReport(seed=1, qos=True, victim_rounds_ok=4,
                          victim_disk_spills=on_spills, demotions=5)
    return off, on, settings


def test_paired_contract_passes_on_the_expected_shape():
    off, on, settings = _clean_pair()
    assert compare_antagonist(off, on, settings) == []


def test_paired_contract_requires_off_run_pressure():
    off, on, settings = _clean_pair(off_spills=0)
    problems = compare_antagonist(off, on, settings)
    assert any("proves nothing" in p for p in problems)


def test_paired_contract_enforces_the_spill_bound():
    off, on, settings = _clean_pair(off_spills=30, on_spills=16)
    problems = compare_antagonist(off, on, settings)
    assert any("did not drop" in p for p in problems)
    # Exactly at the bound is acceptable.
    off, on, settings = _clean_pair(
        off_spills=30, on_spills=int(30 * ANTAGONIST_SPILL_BOUND))
    assert compare_antagonist(off, on, settings) == []


def test_paired_contract_rejects_byte_inexact_or_underflowing_runs():
    off, on, settings = _clean_pair()
    on.victim_rounds_ok = 3  # one round failed to read back
    assert any("byte-exact" in p
               for p in compare_antagonist(off, on, settings))
    off, on, settings = _clean_pair()
    on.demotions = 0
    assert any("never demoted" in p
               for p in compare_antagonist(off, on, settings))
    off, on, settings = _clean_pair()
    off.release_underflow = 1
    assert any("underflow" in p
               for p in compare_antagonist(off, on, settings))


def test_antagonist_settings_do_not_perturb_the_chaos_schedule():
    # The QoS work must leave the seeded fault/kill schedule untouched:
    # pinned chaos seeds keep meaning what they meant.
    rebuilt = ChaosSettings(seed=1302, writers=2, rounds=2, num_nodes=3)
    assert describe_schedule(rebuilt) == describe_schedule(SMOKE)


@pytest.mark.slow
def test_pinned_seed_antagonist_pair_meets_the_qos_contract():
    off, on, problems = run_antagonist_pair(ANT_PAIR)
    assert problems == [], "\n".join(
        [off.summary(), on.summary()] + problems)
    # QoS off: the greedy tenant really pushed victims to disk.
    assert off.victim_disk_spills > 0
    # QoS on: every victim round byte-exact, spill under the bound,
    # pressure relieved by demotion, accounting exact in both runs.
    assert on.victim_rounds_ok == ANT_PAIR.victims * ANT_PAIR.rounds
    assert on.victim_disk_spills <= (
        ANTAGONIST_SPILL_BOUND * off.victim_disk_spills)
    assert on.demotions > 0
    assert off.release_underflow == 0 and on.release_underflow == 0
