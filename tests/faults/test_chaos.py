"""The chaos harness: determinism of the schedule, and a seeded run.

The soak property the suite enforces: under a randomized-but-seeded
mix of every fault class plus server/tracker kill-restarts, concurrent
writers never observe corrupted or duplicated data, only classified
failures — and the pools come back fully free once every task is dead.
"""

import pytest

from repro.faults.chaos import (
    ChaosSettings,
    build_events,
    build_fault_plan,
    describe_schedule,
    payload_for,
    run_chaos,
)

SMOKE = ChaosSettings(seed=1302, writers=2, rounds=2, num_nodes=3)


def test_schedule_is_a_pure_function_of_the_seed():
    assert describe_schedule(SMOKE) == describe_schedule(SMOKE)
    other = ChaosSettings(seed=SMOKE.seed + 1, writers=2, rounds=2)
    assert describe_schedule(SMOKE) != describe_schedule(other)


def test_schedule_covers_every_fault_class():
    sites = {rule.site for rule in build_fault_plan(SMOKE).rules}
    # ISSUE acceptance: at least 6 distinct fault classes in play.
    assert {"server.alloc", "conn.send", "tracker.free_list",
            "tracker.poll", "server.free_bytes", "disk.write",
            "server.read"} <= sites
    assert build_events(SMOKE)  # kill/restart events scheduled too


def test_payloads_are_deterministic_and_distinct():
    assert payload_for(3, 1, 2, 1000) == payload_for(3, 1, 2, 1000)
    assert payload_for(3, 1, 2, 1000) != payload_for(3, 2, 2, 1000)
    assert payload_for(4, 1, 2, 1000) != payload_for(3, 1, 2, 1000)
    assert len(payload_for(3, 1, 2, 999)) == 999


def test_sharded_schedule_is_deterministic_and_targets_shards():
    sharded = ChaosSettings(seed=1302, writers=2, rounds=2, num_nodes=3,
                            shards=2)
    assert describe_schedule(sharded) == describe_schedule(sharded)
    server_events = [e for e in build_events(sharded)
                     if e[0] == "server"]
    assert server_events
    # With shards > 1 every server event carries its target shard.
    for event in server_events:
        assert len(event) == 4
        assert 0 <= event[3] < sharded.shards


def test_unsharded_schedule_is_unchanged_by_the_shard_field():
    # shards=1 must reproduce the historical schedule byte for byte:
    # same 3-tuple events, same description, as before sharding existed.
    for event in build_events(SMOKE):
        if event[0] == "server":
            assert len(event) == 3
    explicit = ChaosSettings(seed=1302, writers=2, rounds=2, num_nodes=3,
                             shards=1)
    assert describe_schedule(explicit) == describe_schedule(SMOKE)


@pytest.mark.slow
def test_sharded_seeded_chaos_run_holds_the_invariants():
    report = run_chaos(ChaosSettings(seed=3, writers=2, rounds=2,
                                     num_nodes=2, shards=2))
    assert report.ok, report.summary()
    assert report.rounds_ok >= 1
    assert any("shard" in line for line in report.events)


@pytest.mark.slow
def test_seeded_chaos_run_holds_the_invariants():
    report = run_chaos(SMOKE)
    assert report.ok, report.summary()
    assert report.rounds_ok >= 1
    assert report.events  # servers/tracker really were bounced


@pytest.mark.slow
def test_same_seed_same_verdict():
    first = run_chaos(ChaosSettings(seed=7, writers=2, rounds=2))
    second = run_chaos(ChaosSettings(seed=7, writers=2, rounds=2))
    assert first.schedule == second.schedule
    assert first.ok == second.ok
