"""The chaos harness: determinism of the schedule, and a seeded run.

The soak property the suite enforces: under a randomized-but-seeded
mix of every fault class plus server/tracker kill-restarts, concurrent
writers never observe corrupted or duplicated data, only classified
failures — and the pools come back fully free once every task is dead.
"""

import pytest

from repro.faults.chaos import (
    ChaosSettings,
    build_events,
    build_fault_plan,
    describe_schedule,
    payload_for,
    run_chaos,
)

SMOKE = ChaosSettings(seed=1302, writers=2, rounds=2, num_nodes=3)


def test_schedule_is_a_pure_function_of_the_seed():
    assert describe_schedule(SMOKE) == describe_schedule(SMOKE)
    other = ChaosSettings(seed=SMOKE.seed + 1, writers=2, rounds=2)
    assert describe_schedule(SMOKE) != describe_schedule(other)


def test_schedule_covers_every_fault_class():
    sites = {rule.site for rule in build_fault_plan(SMOKE).rules}
    # ISSUE acceptance: at least 6 distinct fault classes in play.
    assert {"server.alloc", "conn.send", "tracker.free_list",
            "tracker.poll", "server.free_bytes", "disk.write",
            "server.read"} <= sites
    assert build_events(SMOKE)  # kill/restart events scheduled too


def test_payloads_are_deterministic_and_distinct():
    assert payload_for(3, 1, 2, 1000) == payload_for(3, 1, 2, 1000)
    assert payload_for(3, 1, 2, 1000) != payload_for(3, 2, 2, 1000)
    assert payload_for(4, 1, 2, 1000) != payload_for(3, 1, 2, 1000)
    assert len(payload_for(3, 1, 2, 999)) == 999


@pytest.mark.slow
def test_seeded_chaos_run_holds_the_invariants():
    report = run_chaos(SMOKE)
    assert report.ok, report.summary()
    assert report.rounds_ok >= 1
    assert report.events  # servers/tracker really were bounced


@pytest.mark.slow
def test_same_seed_same_verdict():
    first = run_chaos(ChaosSettings(seed=7, writers=2, rounds=2))
    second = run_chaos(ChaosSettings(seed=7, writers=2, rounds=2))
    assert first.schedule == second.schedule
    assert first.ok == second.ok
