"""Unit tests of the FaultPlan mechanics (no cluster involved)."""

import pickle
import time

import pytest

from repro.errors import OutOfSpongeMemory
from repro.faults import hooks
from repro.faults.plan import Contains, FaultAction, FaultPlan, FaultRule


def test_site_patterns_and_match_filters():
    rule = FaultRule("server.*", FaultAction("zero"),
                     match={"host": "node1"})
    assert rule.consider(0, 0, "server.alloc", {"host": "node1"}) is not None
    assert rule.consider(0, 0, "server.alloc", {"host": "node2"}) is None
    assert rule.consider(0, 0, "conn.send", {"host": "node1"}) is None
    # A missing context key never matches.
    assert rule.consider(0, 0, "server.alloc", {}) is None


def test_match_set_membership_and_predicates():
    rule = FaultRule("x", FaultAction("zero"),
                     match={"op": {"read", "free"}})
    assert rule.consider(0, 0, "x", {"op": "read"}) is not None
    assert rule.consider(0, 0, "x", {"op": "alloc_write"}) is None

    rule = FaultRule("x", FaultAction("zero"),
                     match={"owner": Contains("victim")})
    assert rule.consider(0, 0, "x", {"owner": "pid:9:victim"}) is not None
    assert rule.consider(0, 0, "x", {"owner": "pid:9:other"}) is None


def test_after_skips_and_times_caps():
    rule = FaultRule("x", FaultAction("zero"), after=2, times=2)
    decisions = [rule.consider(0, 0, "x", {}) is not None for _ in range(6)]
    assert decisions == [False, False, True, True, False, False]


def test_probability_is_seed_deterministic():
    def draws(seed):
        rule = FaultRule("x", FaultAction("zero"), probability=0.5)
        return [
            rule.consider(seed, 3, "x", {}) is not None for _ in range(64)
        ]

    first = draws(42)
    assert first == draws(42)
    assert any(first) and not all(first)
    assert first != draws(43)


def test_raise_stall_and_directive_semantics():
    plan = FaultPlan(seed=1)
    plan.deny_alloc(times=1)
    with pytest.raises(OutOfSpongeMemory):
        plan.fire("server.alloc", host="n", owner="t", nbytes=1)
    assert plan.fire("server.alloc", host="n", owner="t", nbytes=1) is None

    plan = FaultPlan().stall("conn.send", delay=0.05, times=1)
    start = time.monotonic()
    assert plan.fire("conn.send", op="ping", payload_len=0) is None
    assert time.monotonic() - start >= 0.04

    plan = FaultPlan().reset_connections(when="mid-payload", times=1)
    action = plan.fire("conn.send", op="alloc_write", payload_len=100)
    assert action is not None
    assert (action.kind, action.when) == ("reset", "mid-payload")


def test_fired_log_records_rule_and_context():
    plan = FaultPlan().tracker_serves_empty(times=2)
    plan.fire("tracker.free_list", client="w1", servers=3)
    plan.fire("tracker.free_list", client="w2", servers=3)
    fired = plan.fired("tracker.free_list")
    assert [f.ctx["client"] for f in fired] == ["w1", "w2"]
    assert plan.fired("conn.send") == []


def test_plan_pickles_across_process_boundaries():
    plan = FaultPlan(seed=9)
    plan.exhaust_server("node2", times=3)
    plan.reset_connections(when="before", probability=0.5)
    plan.rule("server.alloc", FaultAction("zero"),
              match={"owner": Contains("w0")})
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.seed == plan.seed
    assert clone.describe() == plan.describe()
    # The clone works (fresh lock, fresh counters).
    assert clone.fire("server.free_bytes", host="node2",
                      free_bytes=10).kind == "zero"


def test_hooks_disarmed_is_a_noop_and_injected_scopes_arming():
    hooks.disarm()
    assert hooks.fire("server.alloc", host="n") is None
    assert hooks.active() is None
    plan = FaultPlan().deny_alloc()
    with hooks.injected(plan):
        assert hooks.active() is plan
        with pytest.raises(OutOfSpongeMemory):
            hooks.fire("server.alloc", host="n")
    assert hooks.active() is None


def test_describe_is_stable_for_equal_plans():
    def build():
        plan = FaultPlan(seed=4)
        plan.deny_alloc(times=2, after=1)
        plan.fail_disk_writes(full=True, probability=0.25)
        return plan

    assert build().describe() == build().describe()
    other = FaultPlan(seed=4).deny_alloc(times=3, after=1)
    assert build().describe() != other.describe()
