"""Server and tracker restarts under a live connection pool.

Covers the health-check path of the client connection pool (a stale
pooled socket from before a restart is detected, evicted and replaced
transparently) and the data-durability contract of restarts: a sponge
server that comes back re-attaches its mmap pool, so chunks written
before the crash remain readable; only wiping the pool (machine loss)
turns them into ``ChunkLostError``.
"""

import time

import pytest

from repro.errors import ChunkLostError
from repro.runtime.client import RemoteServerStore, TrackerClient
from repro.runtime.connection_pool import ConnectionPool
from repro.runtime.local_cluster import LocalSpongeCluster
from repro.sponge.store import run_sync

CHUNK = 64 * 1024
POOL = 4 * CHUNK


@pytest.fixture(scope="module")
def cluster():
    with LocalSpongeCluster(
        num_nodes=2, pool_size=POOL, chunk_size=CHUNK,
        poll_interval=0.1, gc_interval=30.0,
    ) as cluster:
        yield cluster


def fresh_store(cluster, node_index: int) -> RemoteServerStore:
    server = cluster.server_configs[node_index]
    return RemoteServerStore(
        server.server_id, cluster.server_address(node_index),
        pool=ConnectionPool(),
    )


def test_pooled_socket_survives_server_restart_transparently(cluster):
    """Satellite: health check evicts the pre-restart socket."""
    store = fresh_store(cluster, 0)
    assert store.free_bytes() == POOL
    assert store.connections.idle_count() == 1  # one warm socket pooled
    cluster.restart_server(0)
    # The pooled socket now points at a dead incarnation.  The next
    # request must detect that (at checkout or via the reconnect-once
    # retry) and transparently take a fresh connection.
    assert store.free_bytes() == POOL
    owner = cluster.task_id(0, "post-restart")
    handle = run_sync(store.write_chunk(owner, b"p" * 100))
    assert bytes(run_sync(store.read_chunk(handle))) == b"p" * 100
    run_sync(store.free_chunk(handle))


def test_chunks_survive_a_preserving_restart(cluster):
    store = fresh_store(cluster, 1)
    owner = cluster.task_id(1, "survivor")
    payload = b"s" * CHUNK
    handle = run_sync(store.write_chunk(owner, payload))

    cluster.kill_server(1)
    with pytest.raises((ChunkLostError, OSError)):
        run_sync(store.read_chunk(handle))  # host is down: chunk lost

    cluster.restart_server(1)  # pool preserved
    assert bytes(run_sync(store.read_chunk(handle))) == payload
    run_sync(store.free_chunk(handle))


def test_wiped_restart_loses_the_chunks(cluster):
    store = fresh_store(cluster, 1)
    owner = cluster.task_id(1, "wiped")
    handle = run_sync(store.write_chunk(owner, b"w" * CHUNK))
    cluster.restart_server(1, wipe_pool=True)
    with pytest.raises(ChunkLostError):
        run_sync(store.read_chunk(handle))


def test_tracker_outage_serves_stale_list_then_recovers(cluster):
    client = TrackerClient(cluster.tracker_address, cache_ttl=0.05,
                           pool=ConnectionPool())
    # The previous test just restarted a server; under load the
    # tracker's next poll may not have re-seen it yet, so wait for a
    # full free list before snapshotting it as the stale baseline.
    deadline = time.monotonic() + 10
    live = client.free_list()
    while len(live) < 2 and time.monotonic() < deadline:
        time.sleep(0.1)  # cache TTL, then a real re-fetch
        live = client.free_list()
    assert len(live) == 2

    cluster.kill_tracker()
    time.sleep(0.1)  # let the client cache expire
    # The fetch fails; the stale cache keeps the spill path working.
    assert [s.server_id for s in client.free_list()] == \
        [s.server_id for s in live]
    assert client.stale_fallbacks >= 1

    cluster.restart_tracker()
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        time.sleep(0.1)  # negative-cache TTL, then a real re-fetch
        if len(client.free_list()) == 2:
            return
    raise AssertionError("tracker never recovered for the client")
