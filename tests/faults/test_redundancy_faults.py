"""Injected faults at the redundancy stage.

The new ``redundancy.*`` sites, exercised end to end:

* ``redundancy.encode`` + ``corrupt`` (via ``corrupt_parity``) — a
  parity frame header is flipped at seal time.  Plain data reads must
  stay byte-exact and the reconstruction counters must not move (a
  corrupt parity member that is never needed costs nothing); when the
  parity *is* needed, the failure must surface classified as a lost
  chunk — never as silently wrong bytes, and never mislabelled as
  data corruption.
* ``redundancy.member_read`` + ``raise`` (via ``lose_group_member``) —
  the directly requested member is lost; its siblings and parity are
  healthy, so the read must degrade into a reconstruction and succeed.
* reconstruction under a mid-stream connection reset — sibling reads
  during a reconstruction are idempotent and must retry through a
  transient transport failure instead of escalating a recoverable
  single erasure into a failed group.
"""

import pytest

from repro.backends.memory_backends import (
    LocalPoolStore,
    MemoryDfsStore,
    MemoryDiskStore,
)
from repro.errors import ChunkLostError, CorruptChunkError
from repro.faults import FaultPlan, hooks
from repro.runtime.local_cluster import LocalSpongeCluster
from repro.sponge.allocator import AllocationChain
from repro.sponge.chunk import TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.pool import SpongePool
from repro.sponge.spongefile import SpongeFile

OWNER = TaskId("h0", "red-faults")
CHUNK = 64 * 1024


@pytest.fixture(autouse=True)
def disarm():
    yield
    hooks.disarm()


def make_file(config, pool_chunks=16):
    pool = SpongePool(pool_chunks * config.chunk_size, config.chunk_size)
    chain = AllocationChain(LocalPoolStore(pool), None, None,
                            MemoryDiskStore(), MemoryDfsStore(),
                            config=config)
    return SpongeFile(OWNER, chain, config)


def xor_config(k=2):
    return SpongeConfig(chunk_size=CHUNK, redundancy="xor", redundancy_k=k)


PAYLOAD = bytes(range(256)) * (CHUNK // 64)  # 4 data members at k=2


class TestCorruptParity:
    def test_data_reads_unaffected_and_counters_honest(self):
        # A corrupt parity member that is never consulted must be
        # invisible: byte-exact reads, zero reconstructions recorded.
        sf = make_file(xor_config())
        plan = hooks.arm(FaultPlan().corrupt_parity())
        sf.write_all(PAYLOAD)
        sf.close_sync()
        hooks.disarm()
        assert plan.fired("redundancy.encode")  # parity really was hit
        assert bytes(sf.read_all()) == PAYLOAD
        assert sf._red.stats.reconstructions == 0
        assert sf._red.stats.reconstruct_failures == 0

    def test_needed_corrupt_parity_fails_classified(self):
        # Primary lost + parity corrupt: the reconstruction must fail
        # as a *lost* chunk (the data member was lost, not corrupt),
        # with the failure counted.
        sf = make_file(xor_config())
        hooks.arm(FaultPlan().corrupt_parity())
        sf.write_all(PAYLOAD)
        sf.close_sync()
        hooks.arm(FaultPlan().lose_group_member(role="primary", times=1))
        with pytest.raises(ChunkLostError) as excinfo:
            sf.read_all()
        assert not isinstance(excinfo.value, CorruptChunkError)
        assert sf._red.stats.reconstruct_failures >= 1


class TestLostMembers:
    def test_lost_primary_reconstructs(self):
        sf = make_file(xor_config())
        sf.write_all(PAYLOAD)
        sf.close_sync()
        plan = hooks.arm(
            FaultPlan().lose_group_member(role="primary", times=1)
        )
        assert bytes(sf.read_all()) == PAYLOAD
        assert len(plan.fired("redundancy.member_read")) == 1
        assert sf._red.stats.reconstructions == 1
        assert sf._red.stats.reconstruct_failures == 0

    def test_lost_primary_and_sibling_fails_classified(self):
        sf = make_file(xor_config())
        sf.write_all(PAYLOAD)
        sf.close_sync()
        # Both the requested member and one reconstruction input die:
        # a genuine double loss, surfaced as ChunkLostError.  Sibling
        # reads retry (they are idempotent), so the rule must outlast
        # the retry budget.
        hooks.arm(FaultPlan()
                  .lose_group_member(role="primary", times=1)
                  .lose_group_member(role="sibling", times=10))
        with pytest.raises(ChunkLostError):
            sf.read_all()
        assert sf._red.stats.reconstruct_failures >= 1


class TestReconstructionOverTheWire:
    """Reconstruction against real sponge servers, with transport
    faults injected under the sibling reads."""

    @pytest.fixture(scope="class")
    def cluster(self):
        with LocalSpongeCluster(
            num_nodes=2, pool_size=4 * CHUNK, chunk_size=CHUNK,
            poll_interval=0.1, gc_interval=30.0,
        ) as cluster:
            yield cluster

    def _write(self, cluster):
        config = SpongeConfig(chunk_size=CHUNK, redundancy="xor",
                              redundancy_k=2)
        chain = cluster.chain(0, config=config, attach_local_pool=False)
        owner = cluster.task_id(0, "red-reset")
        sf = SpongeFile(owner, chain, config=config)
        sf.write_all(PAYLOAD)
        sf.close_sync()
        # Anti-affinity spread the groups across both servers (the
        # third member of each group fell through to disk), so the
        # reconstruction below really does cross the wire.
        assert len({h.store_id for h in sf.handles}) >= 2
        return sf

    def test_reconstruction_retries_through_connection_reset(self, cluster):
        sf = self._write(cluster)
        plan = hooks.arm(
            FaultPlan()
            .lose_group_member(role="primary", times=1)
            .reset_awaiting_reply(match={"op": "read"}, times=1)
        )
        try:
            assert bytes(sf.read_all()) == PAYLOAD
        finally:
            hooks.disarm()
        # The reset really hit a remote read, the retry absorbed it,
        # and every reconstruction succeeded.  (The torn socket may be
        # rediscovered by the *next* pooled read, which then degrades
        # into a second successful reconstruction — also fine.)
        assert len(plan.fired("conn.await_reply")) == 1
        assert sf._red.stats.reconstructions >= 1
        assert sf._red.stats.reconstruct_failures == 0
        sf.delete_sync()
