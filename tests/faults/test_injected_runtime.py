"""Fault injection against the real runtime.

Each fault class from the plan's repertoire gets a test that fails if
the runtime's handling of it is removed:

* server-side allocation refusals  -> chain falls through to disk
  (this is also the tracker-staleness test: the session walks its
  cached free list and every advertised server refuses);
* mid-payload connection reset     -> provably-unprocessed failure,
  chain falls through, no server-side leak;
* boundary reset on a reused socket -> transparent reconnect-retry,
  exactly one chunk lands (no duplicates);
* reset while awaiting the reply   -> hard error, never retried
  (the alloc_write may have been delivered);
* refused connects                  -> fall-through, like staleness;
* exhausted server                  -> advertises zero free bytes and
  refuses allocations;
* empty tracker free list           -> targeted client sees no remote
  tier, others unaffected;
* frozen tracker polls              -> snapshot stops refreshing;
* disk-full                         -> falls through to DFS;
* disk IO error                     -> fails the owning task;
* dead task's remote chunks         -> reclaimed by GC.
"""

import multiprocessing
import os
import tempfile
import time

import pytest

from repro.errors import (
    ChunkLostError,
    OutOfSpongeMemory,
    StoreUnavailableError,
)
from repro.faults import Contains, FaultPlan, injected
from repro.faults import hooks
from repro.runtime import protocol
from repro.runtime.client import RemoteServerStore, TrackerClient
from repro.runtime.connection_pool import ConnectionPool
from repro.runtime.local_cluster import LocalSpongeCluster, runtime_task_id
from repro.runtime.sponge_server import ServerConfig, SpongeServerProcess
from repro.runtime.tracker_server import TrackerConfig, TrackerServerProcess
from repro.sponge.allocator import AllocationChain
from repro.sponge.chunk import ChunkLocation, TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.spongefile import SpongeFile
from repro.sponge.store import run_sync
from repro.backends.file_backends import FileDfsStore, FileDiskStore

CHUNK = 64 * 1024
POOL = 4 * CHUNK


def server_side_plan() -> FaultPlan:
    """Armed inside every server/tracker child of the module cluster.

    Rules are scoped by owner-task labels and tracker client ids, so
    each test triggers only its own faults.
    """
    plan = FaultPlan(seed=101)
    plan.deny_alloc(match={"owner": Contains("deny-remote")})
    plan.lose_chunks(match={"owner": Contains("lose-read")})
    plan.tracker_serves_empty(match={"client": "empty-client"})
    return plan


@pytest.fixture(scope="module")
def cluster():
    with LocalSpongeCluster(
        num_nodes=2, pool_size=POOL, chunk_size=CHUNK,
        poll_interval=0.1, gc_interval=30.0,
        fault_plan=server_side_plan(),
    ) as cluster:
        yield cluster


@pytest.fixture(autouse=True)
def always_disarmed():
    yield
    hooks.disarm()


def fresh_store(cluster, node_index: int) -> RemoteServerStore:
    """A remote store on its own (cold) connection pool."""
    server = cluster.server_configs[node_index]
    return RemoteServerStore(
        server.server_id, cluster.server_address(node_index),
        pool=ConnectionPool(),
    )


def server_free_bytes(cluster, node_index: int) -> int:
    reply, _ = protocol.request(
        cluster.server_address(node_index), {"op": "free_bytes"}
    )
    return int(reply["free_bytes"])


# -- (a) refused allocations / tracker staleness ------------------------------


def test_stale_free_list_falls_through_to_disk(cluster):
    """Satellite: every advertised server refuses -> disk absorbs all.

    The session's free list is the tracker's (cached, stale) view; the
    injected refusals make every entry stale, and the chain must keep
    walking and land on local disk without failing the write.
    """
    chain = cluster.chain(0, attach_local_pool=False)
    owner = cluster.task_id(0, "deny-remote")
    payload = os.urandom(2 * CHUNK + 100)
    spongefile = SpongeFile(owner, chain, config=chain.config)
    assert len(spongefile.session.candidate_servers) >= 1  # list was served
    spongefile.write_all(payload)
    spongefile.close_sync()
    assert bytes(spongefile.read_all()) == payload
    assert all(
        handle.location is ChunkLocation.LOCAL_DISK
        for handle in spongefile.handles
    )
    assert chain.stats.remote_stale_misses >= 1
    spongefile.delete_sync()


# -- (b) connection resets at and inside message boundaries -------------------


def test_mid_payload_reset_falls_through_without_leak(cluster):
    store = fresh_store(cluster, 1)
    owner = cluster.task_id(0, "midreset")
    before = server_free_bytes(cluster, 1)
    plan = FaultPlan().reset_connections(
        when="mid-payload", match={"op": "alloc_write"}, times=1
    )
    with injected(plan):
        with pytest.raises(StoreUnavailableError):
            run_sync(store.write_chunk(owner, b"x" * CHUNK))
    assert len(plan.fired("conn.send")) == 1
    # The server saw a torn payload: it must abort the staged chunk, so
    # nothing leaks and the pool returns to its prior free space.
    deadline = time.monotonic() + 5
    while server_free_bytes(cluster, 1) != before:
        assert time.monotonic() < deadline, "staged chunk leaked"
        time.sleep(0.05)
    # The connection stream stays usable for the next request.
    handle = run_sync(store.write_chunk(owner, b"y" * 100))
    assert bytes(run_sync(store.read_chunk(handle))) == b"y" * 100
    run_sync(store.free_chunk(handle))


def test_boundary_reset_on_reused_socket_retries_transparently(cluster):
    store = fresh_store(cluster, 1)
    owner = cluster.task_id(0, "boundary")
    store.free_bytes()  # warm one pooled connection
    assert store.connections.idle_count() == 1
    before = server_free_bytes(cluster, 1)
    plan = FaultPlan().reset_connections(when="before", times=1)
    with injected(plan):
        handle = run_sync(store.write_chunk(owner, b"r" * CHUNK))
    assert len(plan.fired("conn.send")) == 1  # the fault really fired
    # Retried on a fresh connection; exactly one chunk landed.
    assert server_free_bytes(cluster, 1) == before - CHUNK
    assert bytes(run_sync(store.read_chunk(handle))) == b"r" * CHUNK
    run_sync(store.free_chunk(handle))


def test_reset_awaiting_reply_is_never_retried(cluster):
    """A possibly-delivered alloc_write must surface as a hard error."""
    store = fresh_store(cluster, 1)
    dead_pid_owner = _exited_child_owner("node1", "maybe-delivered")
    store.free_bytes()  # warm a pooled connection
    before = server_free_bytes(cluster, 1)
    plan = FaultPlan().reset_awaiting_reply(
        match={"op": "alloc_write"}, times=1
    )
    with injected(plan):
        with pytest.raises(OSError) as excinfo:
            run_sync(store.write_chunk(dead_pid_owner, b"m" * CHUNK))
    assert not isinstance(excinfo.value, StoreUnavailableError)
    # The request *was* delivered: the chunk exists server-side.  A
    # retry would have allocated it twice.
    assert server_free_bytes(cluster, 1) == before - CHUNK
    # Its owner is a dead pid, so GC reclaims it (the §3.1.3 backstop
    # for exactly this maybe-delivered case).
    cluster.request_gc(1)
    assert server_free_bytes(cluster, 1) == before


def _exited_child_owner(host: str, label: str) -> TaskId:
    child = multiprocessing.Process(target=lambda: None)
    child.start()
    child.join()
    return TaskId(host=host, task=f"pid:{child.pid}:{label}")


def test_refused_connect_falls_through(cluster):
    store = fresh_store(cluster, 1)
    owner = cluster.task_id(0, "refuse")
    plan = FaultPlan().refuse_connect(times=1)
    with injected(plan):
        with pytest.raises(StoreUnavailableError):
            run_sync(store.write_chunk(owner, b"c" * 100))
    # Next attempt (budget spent) goes through.
    handle = run_sync(store.write_chunk(owner, b"c" * 100))
    run_sync(store.free_chunk(handle))


# -- (a') exhausted server ----------------------------------------------------


def test_exhausted_server_advertises_zero_and_refuses():
    with tempfile.TemporaryDirectory() as tmp:
        config = ServerConfig(
            server_id="sponge@ex", host="ex", rack="r0",
            port=_free_port(), pool_dir=os.path.join(tmp, "pool"),
            pool_size=POOL, chunk_size=CHUNK,
        )
        server = SpongeServerProcess(config)
        try:
            plan = FaultPlan().exhaust_server("ex", times=1)
            with injected(plan):
                reply, _ = server.dispatch({"op": "free_bytes"}, b"")
                assert reply["free_bytes"] == 0
                with pytest.raises(OutOfSpongeMemory):
                    server.dispatch(
                        {"op": "alloc_write", "owner_host": "ex",
                         "owner_task": "pid:1:t"},
                        b"z" * 100,
                    )
            reply, _ = server.dispatch({"op": "free_bytes"}, b"")
            assert reply["free_bytes"] == POOL
        finally:
            server.close()


def _free_port() -> int:
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


# -- (d) stale / empty tracker free lists -------------------------------------


def test_tracker_serves_empty_list_to_targeted_client(cluster):
    targeted = TrackerClient(cluster.tracker_address, cache_ttl=0.0,
                             client_id="empty-client")
    bystander = TrackerClient(cluster.tracker_address, cache_ttl=0.0,
                              client_id="other-client")
    assert targeted.free_list() == []
    assert len(bystander.free_list()) == 2


def test_frozen_tracker_polls_stop_refreshing_the_snapshot():
    config = TrackerConfig(port=_free_port(), servers={})
    tracker = TrackerServerProcess(config)
    try:
        sentinel = [{"server_id": "ghost", "free_bytes": 1,
                     "host": "h", "rack": "r", "address": ["127.0.0.1", 1]}]
        tracker._snapshot = list(sentinel)
        polls_before = tracker.polls
        with injected(FaultPlan().tracker_freezes(times=1)):
            tracker.poll_once()
        assert tracker.polls == polls_before + 1  # the poll "happened"
        assert tracker.snapshot() == sentinel  # ...but refreshed nothing
        tracker.poll_once()  # budget spent: polls refresh again
        assert tracker.snapshot() == []
    finally:
        tracker._tcp.server_close()
        tracker._poll_pool.close()


# -- (e) disk / DFS backend failures ------------------------------------------


def _disk_dfs_chain(tmp: str) -> AllocationChain:
    return AllocationChain(
        local_store=None,
        tracker=None,
        remote_store_factory=None,
        disk_store=FileDiskStore(os.path.join(tmp, "disk")),
        dfs_store=FileDfsStore(os.path.join(tmp, "dfs")),
        host="h0",
        config=SpongeConfig(chunk_size=1024),
    )


def test_disk_full_falls_through_to_dfs():
    with tempfile.TemporaryDirectory() as tmp:
        chain = _disk_dfs_chain(tmp)
        owner = TaskId("h0", "disk-full")
        spongefile = SpongeFile(owner, chain, config=chain.config)
        payload = bytes(range(256)) * 8  # two 1 KiB chunks
        with injected(FaultPlan().fail_disk_writes(full=True, times=1)):
            spongefile.write_all(payload)
            spongefile.close_sync()
        locations = [handle.location for handle in spongefile.handles]
        assert ChunkLocation.DFS in locations  # the refused write moved down
        assert ChunkLocation.LOCAL_DISK in locations  # later writes recovered
        assert bytes(spongefile.read_all()) == payload
        spongefile.delete_sync()


def test_disk_io_error_fails_the_owning_task():
    with tempfile.TemporaryDirectory() as tmp:
        chain = _disk_dfs_chain(tmp)
        owner = TaskId("h0", "disk-err")
        spongefile = SpongeFile(owner, chain, config=chain.config)
        with injected(FaultPlan().fail_disk_writes(full=False, times=1)):
            with pytest.raises(OSError):
                spongefile.write_all(b"e" * 4096)
        spongefile.delete_sync()


# -- lost chunks fail exactly the owning task ---------------------------------


def test_injected_chunk_loss_fails_only_the_owning_reader(cluster):
    lost_store = fresh_store(cluster, 1)
    ok_store = fresh_store(cluster, 1)
    lost_owner = cluster.task_id(0, "lose-read")  # matches the server plan
    ok_owner = cluster.task_id(0, "keep-read")
    lost = run_sync(lost_store.write_chunk(lost_owner, b"l" * 100))
    kept = run_sync(ok_store.write_chunk(ok_owner, b"k" * 100))
    with pytest.raises(ChunkLostError):
        run_sync(lost_store.read_chunk(lost))
    # The bystander task's chunk is untouched.
    assert bytes(run_sync(ok_store.read_chunk(kept))) == b"k" * 100
    run_sync(ok_store.free_chunk(kept))
    run_sync(lost_store.free_chunk(lost))


# -- GC reclaims dead tasks' chunks -------------------------------------------


def _write_and_exit(address, server_id, host):
    store = RemoteServerStore(server_id, address, pool=ConnectionPool())
    owner = TaskId(host=host, task=f"pid:{os.getpid()}:leaker")
    run_sync(store.write_chunk(owner, b"g" * CHUNK))
    # exits without freeing


def test_gc_reclaims_chunks_of_exited_tasks(cluster):
    before = server_free_bytes(cluster, 0)
    child = multiprocessing.Process(
        target=_write_and_exit,
        args=(cluster.server_address(0),
              cluster.server_configs[0].server_id, "node0"),
    )
    child.start()
    child.join(timeout=30)
    assert child.exitcode == 0
    assert server_free_bytes(cluster, 0) == before - CHUNK
    deadline = time.monotonic() + 10
    while server_free_bytes(cluster, 0) != before:
        assert time.monotonic() < deadline, "dead task's chunk never reclaimed"
        cluster.request_gc(0)
        time.sleep(0.1)
