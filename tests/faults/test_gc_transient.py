"""GC must not reclaim live chunks over transient peer failures.

The satellite fix under test: a sponge server's GC used to treat *any*
failed liveness probe as "dead host" and reclaimed immediately, so a GC
pass racing a slow or restarting peer destroyed live chunks.  Now a
peer host is only declared dead after ``peer_dead_after`` consecutive
failed GC rounds; a single successful probe resets the count.
"""

import multiprocessing
import os
import socket
import tempfile
import time

import pytest

from repro.runtime import protocol
from repro.runtime.sponge_server import (
    ServerConfig,
    SpongeServerProcess,
    serve as serve_sponge,
)
from repro.sponge.chunk import TaskId

CHUNK = 4096
POOL = 4 * CHUNK


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def make_server(tmp: str, name: str, peers: dict,
                peer_dead_after: int = 3) -> SpongeServerProcess:
    config = ServerConfig(
        server_id=f"sponge@{name}", host=name, rack="r0",
        port=_free_port(), pool_dir=os.path.join(tmp, f"pool-{name}"),
        pool_size=POOL, chunk_size=CHUNK,
        peers=peers, peer_dead_after=peer_dead_after,
    )
    return SpongeServerProcess(config)


def close_server(server: SpongeServerProcess) -> None:
    server.close()


@pytest.fixture()
def tmp():
    with tempfile.TemporaryDirectory() as tmp:
        yield tmp


def put_chunk(server: SpongeServerProcess, owner: TaskId) -> None:
    index = server.pool.allocate(owner)
    server.pool.write(index, owner, b"d" * 16)


def spawn_peer(tmp: str, port: int) -> multiprocessing.Process:
    """A real child-process peer (killing it really severs connections)."""
    config = ServerConfig(
        server_id="sponge@b", host="b", rack="r0", port=port,
        pool_dir=os.path.join(tmp, "pool-b"),
        pool_size=POOL, chunk_size=CHUNK,
    )
    process = multiprocessing.Process(
        target=serve_sponge, args=(config,), daemon=True,
    )
    process.start()
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        try:
            reply, _ = protocol.request(("127.0.0.1", port), {"op": "ping"},
                                        timeout=0.5)
            if reply.get("ok"):
                return process
        except Exception:  # noqa: BLE001 - still starting
            time.sleep(0.05)
    raise AssertionError("peer never came up")


def kill_peer(process: multiprocessing.Process) -> None:
    process.kill()
    process.join(timeout=5)


def test_transient_peer_failure_does_not_reclaim_until_threshold(tmp):
    dead_address = ("127.0.0.1", _free_port())  # nobody listening
    server = make_server(tmp, "a", peers={"b": dead_address},
                         peer_dead_after=3)
    try:
        put_chunk(server, TaskId(host="b", task=f"pid:{os.getpid()}:t"))
        # Two failed rounds: still transient, the chunk must survive.
        assert server.run_gc() == 0
        assert server.run_gc() == 0
        assert server.pool.free_chunks == 3
        # Third consecutive failure: the host is confirmed dead.
        assert server.run_gc() == 1
        assert server.pool.free_chunks == 4
    finally:
        close_server(server)


def test_successful_probe_resets_the_failure_count(tmp):
    port = _free_port()
    server = make_server(tmp, "a", peers={"b": ("127.0.0.1", port)},
                         peer_dead_after=2)
    try:
        put_chunk(server, TaskId(host="b", task=f"pid:{os.getpid()}:t"))
        assert server.run_gc() == 0  # peer down: 1 failed round

        # The peer comes back before the threshold; its probe confirms
        # the owner (this process) alive and resets the count.
        peer = spawn_peer(tmp, port)
        try:
            assert server.run_gc() == 0
            assert server._peer_failures == {}
        finally:
            kill_peer(peer)

        # Down again: the count restarts from zero — one failed round
        # is once more not enough.
        assert server.run_gc() == 0
        assert server.pool.free_chunks == 3
        assert server.run_gc() == 1  # second consecutive failure: dead
    finally:
        close_server(server)


def test_peer_confirming_owner_dead_reclaims_immediately(tmp):
    port = _free_port()
    server = make_server(tmp, "a", peers={"b": ("127.0.0.1", port)})
    peer = spawn_peer(tmp, port)
    try:
        child = multiprocessing.Process(target=lambda: None)
        child.start()
        child.join()
        put_chunk(server, TaskId(host="b", task=f"pid:{child.pid}:gone"))
        put_chunk(server, TaskId(host="b", task=f"pid:{os.getpid()}:live"))
        # The peer answers: one owner dead, one alive.  No transient
        # grace applies to a *successful* probe.
        assert server.run_gc() == 1
        assert server.pool.free_chunks == 3
    finally:
        kill_peer(peer)
        close_server(server)


def test_unknown_host_is_confirmed_dead(tmp):
    server = make_server(tmp, "a", peers={})
    try:
        put_chunk(server, TaskId(host="ghost", task="pid:1:t"))
        assert server.run_gc() == 1  # no server for the host: it left
    finally:
        close_server(server)
