"""Fault injection against the batched data path.

The batched ops widen the blast radius of every fault class — one RPC
now carries N chunks and a lease can sit reserved with no bytes behind
it — so each gets its own regression:

* refused lease            -> leasing is best-effort; batched writes
  degrade to inline allocation and still land every chunk;
* stalled write_batch      -> slow, not wrong: the batch completes;
* lost batched read        -> ChunkLostError fails exactly the owner;
* mid-payload reset on a
  write_batch              -> provably unprocessed, nothing staged
  leaks server-side;
* leased-then-abandoned
  chunks                   -> the lease TTL expires and the GC sweep
  returns them; ``server.leases.outstanding`` drops to zero.
"""

import time

import pytest

from repro.errors import ChunkLostError, StoreUnavailableError
from repro.faults import Contains, FaultPlan, injected
from repro.faults import hooks
from repro.runtime import protocol
from repro.runtime.client import RemoteServerStore
from repro.runtime.connection_pool import ConnectionPool
from repro.runtime.local_cluster import LocalSpongeCluster
from repro.sponge.chunk import ChunkLocation
from repro.sponge.config import SpongeConfig
from repro.sponge.spongefile import SpongeFile
from repro.sponge.store import run_sync

CHUNK = 64 * 1024
POOL = 16 * CHUNK
LEASE_TTL = 0.5  # short, so abandoned reservations expire within a test


def server_side_plan() -> FaultPlan:
    """Armed in every server child; rules scoped by owner-task label."""
    plan = FaultPlan(seed=202)
    plan.deny_lease(match={"owner": Contains("deny-lease")})
    plan.stall("server.write_batch", delay=0.05,
               match={"owner": Contains("stall-batch")})
    plan.lose_chunks(site="server.read_batch",
                     match={"owner": Contains("lose-batch")})
    return plan


@pytest.fixture(scope="module")
def cluster():
    with LocalSpongeCluster(
        num_nodes=2, pool_size=POOL, chunk_size=CHUNK,
        poll_interval=0.1, gc_interval=30.0, lease_ttl=LEASE_TTL,
        fault_plan=server_side_plan(),
    ) as cluster:
        yield cluster


@pytest.fixture(autouse=True)
def always_disarmed():
    yield
    hooks.disarm()


def batched_config() -> SpongeConfig:
    return SpongeConfig(chunk_size=CHUNK, batch_depth=4, lease_ahead=4)


def fresh_store(cluster, node_index: int) -> RemoteServerStore:
    server = cluster.server_configs[node_index]
    return RemoteServerStore(
        server.server_id, cluster.server_address(node_index),
        pool=ConnectionPool(),
    )


def server_free_bytes(cluster, node_index: int) -> int:
    reply, _ = protocol.request(
        cluster.server_address(node_index), {"op": "free_bytes"}
    )
    return int(reply["free_bytes"])


def spill_and_verify(cluster, label: str) -> SpongeFile:
    """Write a 6-chunk spill through the batched path and read it back."""
    config = batched_config()
    chain = cluster.chain(0, config=config, attach_local_pool=False)
    owner = cluster.task_id(0, label)
    payload = bytes(range(256)) * 256 * 6  # 6 chunks
    spongefile = SpongeFile(owner, chain, config=config)
    spongefile.write_all(payload)
    spongefile.close_sync()
    assert bytes(spongefile.read_all()) == payload
    return spongefile


# -- refused lease: best-effort means no lease, not no write ------------------


def test_denied_lease_degrades_to_inline_batched_writes(cluster):
    spongefile = spill_and_verify(cluster, "deny-lease")
    # Every chunk still landed (remotely or on disk); nothing was lost
    # to the refused reservation.
    assert len(spongefile.handles) == 6
    spongefile.delete_sync()


# -- stalled write_batch: slow, not wrong -------------------------------------


def test_stalled_write_batch_still_lands_every_chunk(cluster):
    spongefile = spill_and_verify(cluster, "stall-batch")
    assert len(spongefile.handles) == 6
    spongefile.delete_sync()


# -- lost batched read fails exactly the owner --------------------------------


def test_lost_batched_read_raises_chunk_lost(cluster):
    store = fresh_store(cluster, 1)
    lost_owner = cluster.task_id(0, "lose-batch")
    ok_owner = cluster.task_id(0, "keep-batch")
    lost = run_sync(store.write_chunk_batch(lost_owner, [b"l" * 100] * 3))
    kept = run_sync(store.write_chunk_batch(ok_owner, [b"k" * 100] * 3))
    with pytest.raises(ChunkLostError):
        run_sync(store.read_chunk_batch(lost))
    # The bystander's batch reads back fine on the same connection pool.
    parts = run_sync(store.read_chunk_batch(kept))
    assert [bytes(p) for p in parts] == [b"k" * 100] * 3
    run_sync(store.free_chunk_batch(kept))
    run_sync(store.free_chunk_batch(lost))


# -- mid-payload reset on a write_batch: unprocessed, no leak -----------------


def test_mid_payload_reset_on_write_batch_leaks_nothing(cluster):
    store = fresh_store(cluster, 1)
    owner = cluster.task_id(0, "batch-midreset")
    before = server_free_bytes(cluster, 1)
    plan = FaultPlan().reset_connections(
        when="mid-payload", match={"op": "write_batch"}, times=1
    )
    with injected(plan):
        with pytest.raises(StoreUnavailableError):
            run_sync(store.write_chunk_batch(owner, [b"x" * CHUNK] * 4))
    assert len(plan.fired("conn.send")) == 1
    # The server saw a torn batch: every staged chunk must be aborted.
    deadline = time.monotonic() + 5
    while server_free_bytes(cluster, 1) != before:
        assert time.monotonic() < deadline, "staged batch chunks leaked"
        time.sleep(0.05)
    # The stream recovers for the next batched request.
    handles = run_sync(store.write_chunk_batch(owner, [b"y" * 100] * 2))
    parts = run_sync(store.read_chunk_batch(handles))
    assert [bytes(p) for p in parts] == [b"y" * 100] * 2
    run_sync(store.free_chunk_batch(handles))


# -- abandoned leases expire and the GC sweep reclaims them -------------------


def test_expired_leases_are_reclaimed_by_gc(cluster):
    store = fresh_store(cluster, 1)
    owner = cluster.task_id(0, "lease-abandoner")
    before = server_free_bytes(cluster, 1)
    held = store.lease(owner, 4)
    assert held == 4
    assert server_free_bytes(cluster, 1) == before - 4 * CHUNK
    # Abandon the reservations (no write, no release) past their TTL.
    store._leases.clear()
    time.sleep(LEASE_TTL + 0.1)
    deadline = time.monotonic() + 10
    while server_free_bytes(cluster, 1) != before:
        assert time.monotonic() < deadline, "expired leases never reclaimed"
        cluster.request_gc(1)
        time.sleep(0.1)
    snapshot = cluster.scrape()
    assert snapshot.gauges.get("server.leases.outstanding", 0) == 0


def test_released_leases_return_before_expiry(cluster):
    store = fresh_store(cluster, 0)
    owner = cluster.task_id(0, "lease-releaser")
    before = server_free_bytes(cluster, 0)
    assert store.lease(owner, 3) == 3
    store.release_leases(owner)
    assert store.leases_held(owner) == 0
    deadline = time.monotonic() + 5
    while server_free_bytes(cluster, 0) != before:
        assert time.monotonic() < deadline, "released leases not freed"
        time.sleep(0.05)
