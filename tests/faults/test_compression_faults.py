"""Injected faults at the compression stage.

Two failure classes, matching the new ``compress.*`` sites:

* ``compress.encode`` + ``corrupt`` — a frame header is flipped at
  pack time.  The read path must raise
  :class:`~repro.errors.CorruptChunkError` (a
  :class:`~repro.errors.ChunkLostError`, so the owning task is re-run
  like any lost chunk), never return silently wrong bytes.
* ``compress.probe`` + ``raise`` — adaptive probes fail.  The codec
  must degrade to raw passthrough and stay byte-exact: compression is
  an optimization, never a correctness dependency.
"""

import os

import pytest

from repro.backends.memory_backends import (
    LocalPoolStore,
    MemoryDfsStore,
    MemoryDiskStore,
)
from repro.errors import ChunkLostError, CorruptChunkError
from repro.faults import hooks
from repro.faults.plan import FaultPlan
from repro.sponge.allocator import AllocationChain
from repro.sponge.chunk import TaskId
from repro.sponge.config import SpongeConfig
from repro.sponge.pool import SpongePool
from repro.sponge.spongefile import SpongeFile

OWNER = TaskId("h0", "codec-faults")
CHUNK = 64 * 1024
TEXT = (b"%08d\tkey-%04d\tvalue-%06d\n" % (1, 2, 3)) * 20_000  # ~520 KB


@pytest.fixture(autouse=True)
def disarm():
    yield
    hooks.disarm()


def make_file(config, pool_chunks=16):
    pool = SpongePool(pool_chunks * config.chunk_size, config.chunk_size)
    chain = AllocationChain(LocalPoolStore(pool), None, None,
                            MemoryDiskStore(), MemoryDfsStore(),
                            config=config)
    return pool, SpongeFile(OWNER, chain, config)


class TestCorruptFrames:
    def test_corrupt_header_raises_on_read(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="always")
        _, sf = make_file(config)
        hooks.arm(FaultPlan(seed=5).corrupt_frames(times=1))
        sf.write_all(TEXT)
        sf.close_sync()
        with pytest.raises(CorruptChunkError):
            sf.read_all()

    def test_corruption_is_a_lost_chunk(self):
        # CorruptChunkError subclasses ChunkLostError: frameworks that
        # already re-run tasks on lost chunks handle corruption for
        # free, and the chaos harness classifies it as expected.
        assert issubclass(CorruptChunkError, ChunkLostError)

    def test_uncorrupted_chunks_unaffected(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="always")
        _, first = make_file(config)
        first.write_all(TEXT[:100_000])
        first.close_sync()
        hooks.arm(FaultPlan(seed=5).corrupt_frames(times=1))
        _, second = make_file(config)
        second.write_all(TEXT[:100_000])
        second.close_sync()
        hooks.disarm()
        # The fault hit only the armed file's frames.
        assert bytes(first.read_all()) == TEXT[:100_000]
        with pytest.raises(CorruptChunkError):
            second.read_all()


class TestProbeFailures:
    def test_probe_failure_degrades_to_raw(self):
        config = SpongeConfig(chunk_size=CHUNK, compression="adaptive")
        hooks.arm(FaultPlan(seed=7).fail_probe(times=10))
        _, sf = make_file(config)
        sf.write_all(TEXT)
        sf.close_sync()
        hooks.disarm()
        codec = sf._codec
        assert codec.stats.probe_failures > 0
        # Every unit passed through raw — compressible data, but the
        # probe never succeeded, so nothing was trusted to zlib...
        assert codec.stats.stored_bytes >= codec.stats.raw_bytes
        # ...and the file is still byte-exact.
        assert bytes(sf.read_all()) == TEXT

    def test_transient_probe_failure_recovers(self):
        config = SpongeConfig(
            chunk_size=CHUNK, compression="adaptive",
            compression_reprobe_chunks=2,
        )
        hooks.arm(FaultPlan(seed=7).fail_probe(times=1))
        _, sf = make_file(config)
        sf.write_all(TEXT)
        sf.close_sync()
        hooks.disarm()
        codec = sf._codec
        # First probe failed, a re-probe succeeded: compression kicked
        # back in mid-file.
        assert codec.stats.probe_failures == 1
        assert codec.stats.stored_bytes < codec.stats.raw_bytes
        assert bytes(sf.read_all()) == TEXT

    def test_faults_off_the_write_path_for_incompressible(self):
        # Probe faults fire only at probes; raw-verdict units never
        # touch the site, so a poisoned probe cannot stall passthrough.
        config = SpongeConfig(chunk_size=CHUNK, compression="adaptive")
        hooks.arm(FaultPlan(seed=7).fail_probe(times=1))
        payload = os.urandom(CHUNK * 3)
        _, sf = make_file(config)
        sf.write_all(payload)
        sf.close_sync()
        hooks.disarm()
        assert sf._codec.stats.probe_failures == 1
        assert bytes(sf.read_all()) == payload
